"""Property suite for the compiled (numpy CSR) index tier and sharded builds.

The tiered approximate-then-exact ranker of
:meth:`repro.data.indexing.SourceTokenIndex.top_k` is an *implementation*
choice, never a result choice: for every query it must return byte-identical
rankings to the dict-walk traversal (``tiered=False``) and to the full-scan
golden reference (``indexed=False``).  This suite drives all three paths over
seeded random sources — including unicode-heavy records and records whose
text yields no blocking tokens at all — plus exclusion sets, ``k=None`` and
``k`` larger than the source.

It also covers the satellite machinery the compiled tier rides on: the
deterministic streaming generator :func:`iter_synthetic_records`, chunked
:meth:`DataSource.from_iterable`, the batched delta replay, parallel sharded
builds through :class:`~repro.eval.runner.SweepRunner` (serial, threads and
processes), and memory-mapped npz artifact loads.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from repro.data.artifacts import (
    DEFAULT_INDEX_SHARDS,
    ArtifactStore,
    load_npz_arrays,
    token_shard,
)
from repro.data.blocking import top_k_neighbours
from repro.data.indexing import (
    COMPILED_MIN_RECORDS,
    SourceTokenIndex,
    build_sharded_index,
    get_source_index,
)
from repro.data.records import Record, Schema
from repro.data.synthetic import iter_synthetic_records, synthetic_schema
from repro.data.table import DataSource
from repro.eval.runner import SweepRunner
from repro.exceptions import DatasetError

from tests.helpers import make_record

_SCHEMA = Schema.from_names(["name", "description", "price"])

#: Deliberately hostile vocabulary: multi-script unicode, combining-ish
#: accents, digits, and fragments too short to ever become blocking tokens.
_WORDS = (
    "sony", "bravia", "camera", "speaker", "wireless", "router", "café",
    "naïve", "Ünïcôdé", "tökens", "日本語テスト", "数码相机", "пример",
    "λόγος", "ışık", "Zürich", "mp3", "x1", "4k", "a", "-", "!!",
)


def _random_record(rng: random.Random, record_id: str) -> Record:
    if rng.random() < 0.08:
        # No token of length >= 2 survives tokenisation: the empty-token case.
        values = {"name": "a !", "description": "", "price": "9"}
    else:
        values = {
            "name": " ".join(rng.choices(_WORDS, k=rng.randint(1, 4))),
            "description": " ".join(rng.choices(_WORDS, k=rng.randint(0, 6))),
            "price": f"{rng.randint(1, 999)}.{rng.randint(0, 99):02d}",
        }
    return Record.from_raw(record_id, values, _SCHEMA, source="U")


def _random_source(rng: random.Random, count: int, name: str = "scale-fuzz") -> DataSource:
    records = [_random_record(rng, f"F{i:04d}") for i in range(count)]
    return DataSource(name=f"{name}-{count}", schema=_SCHEMA, records=records)


def _ids(records) -> list[str]:
    return [record.record_id for record in records]


class TestTieredEqualsExactEqualsScan:
    """The tiered ranker never diverges from the dict walk or the scan."""

    @pytest.mark.parametrize("seed", range(40))
    def test_randomised_sources(self, seed):
        rng = random.Random(seed)
        source = _random_source(rng, rng.randint(2, 60))
        index = get_source_index(source, 2)
        queries = [rng.choice(list(source)) for _ in range(3)]
        queries.append(_random_record(rng, "Q-external"))
        for query in queries:
            exclude = (
                tuple(rng.sample(sorted(source.ids()), k=min(2, len(source))))
                if rng.random() < 0.5
                else ()
            )
            for k in (1, 3, None, len(source) + 5):
                scanned = top_k_neighbours(
                    query, list(source), k=k, exclude_ids=exclude, indexed=False
                )
                exact = index.top_k(query, k=k, exclude_ids=exclude, tiered=False)
                tiered = index.top_k(query, k=k, exclude_ids=exclude, tiered=True)
                assert _ids(exact) == _ids(scanned)
                assert _ids(tiered) == _ids(scanned)

    def test_empty_token_query(self):
        rng = random.Random(7)
        source = _random_source(rng, 12)
        index = get_source_index(source, 2)
        query = Record.from_raw(
            "Q-empty", {"name": "!", "description": "", "price": "1"}, _SCHEMA, source="U"
        )
        for k in (2, None):
            assert _ids(index.top_k(query, k=k, tiered=True)) == _ids(
                index.top_k(query, k=k, tiered=False)
            )

    def test_auto_routing_prefers_dict_below_threshold(self):
        rng = random.Random(11)
        source = _random_source(rng, 20)
        index = get_source_index(source, 2)
        assert len(source) < COMPILED_MIN_RECORDS
        index.top_k(_random_record(rng, "Q"), k=3)
        assert index._compiled is None  # auto stays on the dict walk at small scale
        index.top_k(_random_record(rng, "Q2"), k=3, tiered=True)
        assert index._compiled is not None  # explicit tiered=True compiles on demand


class TestStreamingGenerator:
    def test_deterministic_and_prefix_stable(self):
        first = list(iter_synthetic_records(25, seed=3))
        again = list(iter_synthetic_records(25, seed=3))
        assert [r.values for r in first] == [r.values for r in again]
        # Each record depends only on (seed, index): a longer stream starts
        # with exactly the shorter one, so chunked consumers agree.
        longer = list(itertools.islice(iter_synthetic_records(100, seed=3), 25))
        assert [r.values for r in longer] == [r.values for r in first]
        different = list(iter_synthetic_records(25, seed=4))
        assert [r.values for r in different] != [r.values for r in first]

    def test_from_iterable_matches_eager_construction(self):
        schema = synthetic_schema()
        records = list(iter_synthetic_records(120, seed=9))
        eager = DataSource(name="eager", schema=schema, records=records)
        streamed = DataSource.from_iterable(
            "streamed", schema, iter_synthetic_records(120, seed=9), chunk_size=32
        )
        assert len(streamed) == len(eager) == 120
        assert [r.values for r in streamed] == [r.values for r in eager]

    def test_from_iterable_rejects_duplicate_ids(self):
        schema = synthetic_schema()
        records = list(iter_synthetic_records(5, seed=0))
        with pytest.raises(DatasetError):
            DataSource.from_iterable("dup", schema, records + records[:1])


class TestBatchedReplay:
    def test_many_mutations_stay_equivalent(self):
        """A long mutation burst replays through the batched posting buffer."""
        rng = random.Random(42)
        source = _random_source(rng, 30, name="replay")
        index = get_source_index(source, 2)
        index.ensure_fresh()
        for step in range(40):
            action = rng.random()
            ids = sorted(source.ids())
            if action < 0.4 or len(ids) < 5:
                source.add(_random_record(rng, f"N{step:03d}"))
            elif action < 0.7:
                source.update(_random_record(rng, rng.choice(ids)))
            else:
                source.remove(rng.choice(ids))
        query = _random_record(rng, "Q-replay")
        scanned = top_k_neighbours(query, list(source), k=None, indexed=False)
        assert _ids(index.top_k(query, tiered=False)) == _ids(scanned)
        assert _ids(index.top_k(query, tiered=True)) == _ids(scanned)
        assert index.stats.builds == 1  # served by replay, not rebuilds
        rebuilt = SourceTokenIndex(source, 2)
        rebuilt.ensure_fresh()
        assert index.canonical_state() == rebuilt.canonical_state()


class TestShardedBuild:
    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_build_matches_lazy_index(self, executor):
        schema = synthetic_schema()
        source = DataSource.from_iterable(
            f"sharded-{executor}", schema, iter_synthetic_records(150, seed=1)
        )
        runner = SweepRunner(executor=executor, max_workers=2)
        sharded = build_sharded_index(source, runner=runner, chunk_count=4)
        reference = SourceTokenIndex(source, 2)
        reference.ensure_fresh()
        assert sharded.canonical_state() == reference.canonical_state()
        query = next(iter(source))
        assert _ids(sharded.top_k(query, k=10)) == _ids(reference.top_k(query, k=10, tiered=False))

    def test_sharded_index_absorbs_mutations(self):
        schema = synthetic_schema()
        source = DataSource.from_iterable(
            "sharded-mut", schema, iter_synthetic_records(80, seed=2)
        )
        index = build_sharded_index(source, chunk_count=3)
        source.remove(next(iter(source)).record_id)
        extra = next(iter(iter_synthetic_records(1, seed=99, id_prefix="X")))
        source.add(extra)
        query = next(iter(iter_synthetic_records(1, seed=17, id_prefix="Q")))
        scanned = top_k_neighbours(query, list(source), k=None, indexed=False)
        assert _ids(index.top_k(query, tiered=True)) == _ids(scanned)
        assert index.stats.builds == 1

    def test_token_shard_is_process_stable(self):
        # crc32, not hash(): the same token must land on the same shard in
        # every worker process regardless of PYTHONHASHSEED.
        for token in ("sony", "日本語テスト", "café"):
            shard = token_shard(token, DEFAULT_INDEX_SHARDS)
            assert 0 <= shard < DEFAULT_INDEX_SHARDS
            assert token_shard(token, DEFAULT_INDEX_SHARDS) == shard


class TestNpzArtifacts:
    def test_mmap_load_matches_eager_load(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        schema = synthetic_schema()
        source = DataSource.from_iterable(
            "npz-mmap", schema, iter_synthetic_records(60, seed=8)
        )
        source.artifact_store = store
        index = get_source_index(source, 2)
        index.ensure_fresh()
        paths = list((tmp_path / "artifacts").rglob("index_*.npz"))
        assert len(paths) == 1
        mapped = load_npz_arrays(paths[0], mmap=True)
        eager = load_npz_arrays(paths[0], mmap=False)
        assert mapped is not None and eager is not None
        assert set(mapped) == set(eager)
        for name in eager:
            assert np.array_equal(mapped[name], eager[name]), name

    def test_warm_load_serves_compiled_queries(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        schema = synthetic_schema()
        records = list(iter_synthetic_records(70, seed=12))
        cold_source = DataSource(name="npz-warm", schema=schema, records=records)
        cold_source.artifact_store = store
        get_source_index(cold_source, 2).ensure_fresh()

        warm_source = DataSource(name="npz-warm", schema=schema, records=records)
        warm_source.artifact_store = store
        warm = get_source_index(warm_source, 2)
        warm.ensure_fresh()
        assert warm.stats.loads == 1 and warm.stats.builds == 0
        query = records[3]
        scanned = top_k_neighbours(query, records, k=5, indexed=False)
        assert _ids(warm.top_k(query, k=5, tiered=True)) == _ids(scanned)
        assert _ids(warm.top_k(query, k=5, tiered=False)) == _ids(scanned)
