"""Tests of the repro-lint static checker (``repro.analysis``).

Per rule: at least one fixture the rule must flag and one adjacent construct
it must not (the negative is what keeps the live tree's idioms lintable).
Plus the framework contracts — suppression grammar, scope routing, the JSON
schema — and the meta-tests that gate the repository itself: the live tree
lints clean, and the README env table matches the registry.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import env
from repro.analysis import RULES, render_json, run_paths
from repro.analysis.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(tmp_path, source, scope="src", name="module_under_test.py"):
    """Lint ``source`` as a file of ``scope``; return its active rule ids."""
    path = tmp_path / scope / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    result = run_paths([path], root=tmp_path)
    return [finding.rule_id for finding in result.active], result


# ------------------------------------------------------------ DET fixtures


class TestDeterminismRules:
    def test_det001_flags_hash_in_src(self, tmp_path):
        ids, _ = lint(tmp_path, "key = hash('abc')\n")
        assert ids == ["DET001"]

    def test_det001_exempts_dunder_hash_and_tests(self, tmp_path):
        source = """
            class Thing:
                def __hash__(self):
                    return hash(('a', 'b'))
        """
        assert lint(tmp_path, source)[0] == []
        assert lint(tmp_path, "key = hash('abc')\n", scope="tests")[0] == []

    def test_det002_flags_set_iteration_everywhere(self, tmp_path):
        source = """
            def run(items, extra):
                for item in set(items) | set(extra):
                    print(item)
                flattened = list({1, 2, 3})
                labels = [str(label) for label in {x for x in items}]
                joined = ",".join(frozenset(items))
                return flattened, labels, joined
        """
        ids, _ = lint(tmp_path, source, scope="tests")
        assert ids == ["DET002"] * 4

    def test_det002_allows_order_independent_consumers(self, tmp_path):
        source = """
            def run(items):
                ordered = sorted(set(items))
                count = len({1, 2})
                smallest = min(set(items))
                present = "a" in set(items)
                return ordered, count, smallest, present
        """
        assert lint(tmp_path, source)[0] == []

    def test_det003_flags_global_rng_allows_seeded(self, tmp_path):
        source = """
            import random
            import numpy as np

            bad = random.shuffle([1, 2])
            also_bad = np.random.rand(3)
            good = random.Random(7).random()
            also_good = np.random.default_rng(7).random()
        """
        ids, _ = lint(tmp_path, source, scope="benchmarks")
        assert ids == ["DET003", "DET003"]

    def test_det004_flags_wall_clock_allows_monotonic(self, tmp_path):
        source = """
            import time

            def measure():
                start = time.perf_counter()
                time.sleep(0.0)
                return time.time() - start
        """
        ids, _ = lint(tmp_path, source)
        assert ids == ["DET004"]
        assert lint(tmp_path, "import time\nstamp = time.time()\n", scope="tests")[0] == []


# ------------------------------------------------------------ ENV fixtures


class TestEnvRules:
    def test_env001_flags_direct_reads(self, tmp_path):
        source = """
            import os

            PLAN_ENV = "REPRO_FAULT_PLAN"

            a = os.environ.get("REPRO_FULL")
            b = os.getenv(PLAN_ENV)
            c = os.environ["REPRO_FULL"]
            d = "REPRO_FULL" in os.environ
        """
        ids, _ = lint(tmp_path, source, scope="tests")
        assert ids == ["ENV001"] * 4

    def test_env001_ignores_writes_and_non_repro_names(self, tmp_path):
        source = """
            import os

            os.environ["REPRO_FULL"] = "1"
            os.environ.pop("REPRO_FULL", None)
            del os.environ["REPRO_FULL"]
            path = os.environ.get("PATH")
        """
        assert lint(tmp_path, source)[0] == []

    def test_env001_exempts_the_registry_module(self, tmp_path):
        source = "import os\nvalue = os.environ.get('REPRO_FULL')\n"
        ids, _ = lint(tmp_path, source, name="repro/env.py")
        assert ids == []

    def test_env002_flags_unregistered_knobs_only(self, tmp_path):
        source = """
            from repro import env

            bad = env.read_bool("REPRO_NOT_A_KNOB")
            good = env.read_bool("REPRO_FULL")

            def dynamic(name):
                return env.read_str(name)  # unresolvable: not checked
        """
        ids, _ = lint(tmp_path, source, scope="tests")
        assert ids == ["ENV002"]


# ------------------------------------------------------------ IOH fixtures


class TestIoHardeningRules:
    def test_ioh001_flags_write_modes_only(self, tmp_path):
        source = """
            from pathlib import Path

            with open("out.bin", "wb") as handle:
                handle.write(b"x")
            with Path("log.txt").open("a", encoding="utf-8") as handle:
                handle.write("append-mode checkpoint protocol is exempt")
            with open("in.txt") as handle:
                handle.read()
        """
        ids, _ = lint(tmp_path, source)
        assert ids == ["IOH001"]

    def test_ioh002_flags_raw_replace(self, tmp_path):
        ids, _ = lint(tmp_path, "import os\nos.replace('a', 'b')\n")
        assert ids == ["IOH002"]

    def test_ioh003_flags_pathlib_writers(self, tmp_path):
        source = "from pathlib import Path\nPath('x').write_text('y')\n"
        ids, _ = lint(tmp_path, source)
        assert ids == ["IOH003"]

    def test_ioh_rules_exempt_the_artifact_module_and_tests(self, tmp_path):
        source = """
            import os
            from pathlib import Path

            with open("out.txt", "w") as handle:
                handle.write("x")
            os.replace("a", "b")
            Path("x").write_bytes(b"y")
        """
        assert lint(tmp_path, source, name="repro/data/artifacts.py")[0] == []
        assert lint(tmp_path, source, scope="tests")[0] == []


# ------------------------------------------------------------ EXC fixtures


class TestExceptionRules:
    def test_exc001_flags_bare_except_in_any_scope(self, tmp_path):
        source = """
            try:
                work()
            except:
                cleanup()
        """
        assert lint(tmp_path, source, scope="tests")[0] == ["EXC001"]

    def test_exc002_flags_untaxonomied_broad_handler(self, tmp_path):
        source = """
            def load():
                try:
                    return parse()
                except Exception:
                    return None
        """
        assert lint(tmp_path, source)[0] == ["EXC002"]

    def test_exc002_accepts_reraise_taxonomy_and_classification(self, tmp_path):
        source = """
            from repro.exceptions import EvaluationError, is_transient

            def run():
                try:
                    return work()
                except Exception:
                    log()
                    raise
                try:
                    return work()
                except Exception as exc:
                    raise EvaluationError("unit failed") from exc
                try:
                    return work()
                except Exception as exc:
                    if is_transient(exc):
                        return retry()
                    return None
        """
        assert lint(tmp_path, source)[0] == []

    def test_exc003_flags_silent_swallow_not_narrow_pass(self, tmp_path):
        source = """
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except OSError:
                pass
        """
        assert lint(tmp_path, source)[0] == ["EXC003"]


# ----------------------------------------------------------- CONC fixtures


class TestConcurrencyRules:
    def test_conc001_flags_unguarded_mutation(self, tmp_path):
        source = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def drop(self, key):
                    self._entries.pop(key, None)
        """
        ids, result = lint(tmp_path, source)
        assert ids == ["CONC001"]
        assert "drop()" in result.active[0].message

    def test_conc001_allows_guarded_class_and_init_writes(self, tmp_path):
        source = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def clear(self):
                    with self._lock:
                        self._entries.clear()
        """
        assert lint(tmp_path, source)[0] == []

    def test_conc002_flags_nested_same_lock_only(self, tmp_path):
        source = """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._io_lock = threading.Lock()

                def deadlocks(self):
                    with self._lock:
                        with self._lock:
                            pass

                def fine(self):
                    with self._lock:
                        with self._io_lock:
                            pass
        """
        assert lint(tmp_path, source, scope="tests")[0] == ["CONC002"]


# ------------------------------------------------------------ suppressions


class TestSuppressions:
    def test_inline_suppression_consumes_the_finding(self, tmp_path):
        source = "key = hash('abc')  # repro-lint: disable=DET001 -- fixture rationale\n"
        ids, result = lint(tmp_path, source)
        assert ids == []
        assert [finding.rule_id for finding, _ in result.suppressed] == ["DET001"]
        assert result.suppressed[0][1].reason == "fixture rationale"

    def test_own_line_suppression_covers_the_next_line(self, tmp_path):
        source = """
            # repro-lint: disable=DET001 -- statement too long for an inline comment
            key = hash('abc')
        """
        ids, _ = lint(tmp_path, source)
        assert ids == []

    def test_suppression_only_silences_the_named_rule(self, tmp_path):
        source = "import time\nstamp = time.time() + hash('a')  # repro-lint: disable=DET001 -- only the hash\n"
        ids, _ = lint(tmp_path, source)
        assert ids == ["DET004"]

    def test_missing_reason_is_sup001(self, tmp_path):
        ids, _ = lint(tmp_path, "key = hash('abc')  # repro-lint: disable=DET001\n")
        assert sorted(ids) == ["DET001", "SUP001"]

    def test_unknown_rule_id_is_sup001(self, tmp_path):
        ids, _ = lint(tmp_path, "x = 1  # repro-lint: disable=NOPE999 -- whatever\n")
        assert ids == ["SUP001"]

    def test_unused_suppression_is_sup002(self, tmp_path):
        ids, _ = lint(tmp_path, "x = 1  # repro-lint: disable=DET001 -- nothing here\n")
        assert ids == ["SUP002"]

    def test_directive_inside_a_string_is_not_a_suppression(self, tmp_path):
        source = '''
            FIXTURE = "key = hash('x')  # repro-lint: disable=DET001 -- in a string"
            key = hash('abc')
        '''
        ids, _ = lint(tmp_path, source)
        assert ids == ["DET001"]  # and no SUP002 for the string's directive


# ------------------------------------------------------- reporters and CLI


class TestReporting:
    def test_json_report_schema(self, tmp_path):
        _, result = lint(tmp_path, "key = hash('abc')\n")
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["clean"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "column", "message"}
        assert finding["rule"] == "DET001"
        assert payload["suppressed"] == []

    def test_cli_exit_codes_and_list_rules(self, tmp_path, capsys):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("key = hash('abc')\n", encoding="utf-8")
        assert lint_main([str(bad), "--root", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

        good = tmp_path / "src" / "good.py"
        good.write_text("value = 1\n", encoding="utf-8")
        assert lint_main([str(good), "--root", str(tmp_path)]) == 0

        assert lint_main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        assert "DET001" in listing and "CONC002" in listing

    def test_unparseable_file_is_reported_not_crashed(self, tmp_path):
        ids, _ = lint(tmp_path, "def broken(:\n")
        assert ids == ["SUP001"]


# -------------------------------------------------------------- meta-tests


class TestRepositoryGates:
    def test_rule_inventory_meets_the_contract(self):
        families = {registered.family for registered in RULES.values()}
        checked = [registered for registered in RULES.values() if registered.check]
        assert {"DET", "ENV", "IOH", "EXC", "CONC", "SUP"} <= families
        assert len(checked) >= 12

    def test_live_tree_is_clean(self):
        result = run_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        report = "\n".join(
            f"{finding.path}:{finding.line} {finding.rule_id} {finding.message}"
            for finding in result.active
        )
        assert result.clean, f"repro-lint findings in the live tree:\n{report}"
        # Every suppression in the tree is live (SUP002 would flag stale ones)
        # and carries a reason by construction (SUP001 enforces the grammar).
        assert all(suppression.reason for _, suppression in result.suppressed)

    def test_readme_env_table_matches_registry(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        start = "<!-- env-table:start -->"
        end = "<!-- env-table:end -->"
        assert start in readme and end in readme, "README env-table markers missing"
        block = readme.split(start, 1)[1].split(end, 1)[0].strip("\n")
        assert block == env.markdown_table().strip("\n"), (
            "README env table drifted from the repro.env registry; regenerate "
            "with: PYTHONPATH=src python -c "
            '"from repro import env; print(env.markdown_table())"'
        )

    def test_rule_catalogue_documents_every_rule(self):
        catalogue = (REPO_ROOT / "docs" / "lint-rules.md").read_text(encoding="utf-8")
        missing = [rule_id for rule_id in RULES if rule_id not in catalogue]
        assert not missing, f"docs/lint-rules.md lacks entries for: {missing}"

    def test_every_registered_knob_is_used_somewhere(self):
        tree_text = "\n".join(
            path.read_text(encoding="utf-8")
            for directory in ("src", "tests", "benchmarks")
            for path in (REPO_ROOT / directory).rglob("*.py")
            if path.name != "env.py"  # the registry itself doesn't count as a use
        )
        unused = [declared.name for declared in env.knobs() if declared.name not in tree_text]
        assert not unused, f"registered knobs never referenced: {unused}"
