"""Equivalence and unit tests for the source token index (repro.data.indexing).

The contract under test: every indexed path — top-k similarity ranking, token
blocking, candidate-pair generation and open-triangle discovery — returns
*identical* results to the full-scan reference it replaces, while building
each source's index once and reusing it across queries.
"""

from __future__ import annotations

import random

import pytest

from repro.certa.explainer import CertaExplainer
from repro.certa.triangles import find_open_triangles
from repro.data.blocking import (
    DEFAULT_BLOCKING_TOKEN_LENGTH,
    candidate_pairs,
    record_blocking_tokens,
    token_blocking,
    top_k_neighbours,
)
from repro.data.indexing import (
    IndexStats,
    SourceTokenIndex,
    get_source_index,
    interned_blocking_tokens,
)
from repro.data.table import DataSource

from tests.helpers import LEFT_SCHEMA, SimilarityModel, make_record, toy_sources


class TestInternedTokens:
    def test_matches_record_blocking_tokens(self, sources):
        left, _ = sources
        for record in left:
            for min_length in (2, 3, 5):
                assert interned_blocking_tokens(record, min_length) == frozenset(
                    record_blocking_tokens(record, min_length)
                )

    def test_same_content_shares_one_entry(self, sources):
        """Perturbed copies with identical content intern to the same object."""
        left, _ = sources
        record = left.get("L0")
        copy = record.replace_values({}, suffix="+copy")
        first = interned_blocking_tokens(record, 2)
        second = interned_blocking_tokens(copy, 2)
        assert first is second


class TestIndexStats:
    def test_subtraction_gives_delta(self):
        later = IndexStats(builds=3, queries=10, postings_visited=100, candidates_pruned=40)
        earlier = IndexStats(builds=1, queries=4, postings_visited=30, candidates_pruned=10)
        delta = later - earlier
        assert delta == IndexStats(builds=2, queries=6, postings_visited=70, candidates_pruned=30)

    def test_addition_aggregates(self):
        total = IndexStats(builds=1, queries=2) + IndexStats(queries=3, postings_visited=5)
        assert total == IndexStats(builds=1, queries=5, postings_visited=5)

    def test_as_dict_is_prefixed(self):
        stats = IndexStats(
            builds=1, loads=5, delta_applies=6, queries=2, postings_visited=3, candidates_pruned=4
        )
        assert stats.as_dict() == {
            "index_builds": 1,
            "index_loads": 5,
            "index_delta_applies": 6,
            "index_queries": 2,
            "index_postings_visited": 3,
            "index_candidates_pruned": 4,
            "index_bytes_resident": 0,
            "index_compile_ms": 0.0,
            "index_degraded_queries": 0,
        }

    def test_loads_participate_in_arithmetic(self):
        """Warm starts are accounted separately from builds in sums and deltas."""
        total = IndexStats(builds=1, loads=2) + IndexStats(loads=3, queries=1)
        assert total == IndexStats(builds=1, loads=5, queries=1)
        assert (total - IndexStats(loads=4)).loads == 1


def _scan_ranking(query, source, k, exclude_ids=(), min_token_length=DEFAULT_BLOCKING_TOKEN_LENGTH):
    return top_k_neighbours(
        query, list(source), k=k, exclude_ids=exclude_ids,
        min_token_length=min_token_length, indexed=False,
    )


class TestTopKEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 4, 10, None])
    def test_identical_to_scan_on_toy_sources(self, sources, k):
        left, right = sources
        for query in list(left) + list(right):
            indexed = top_k_neighbours(query, left, k=k, indexed=True)
            scanned = _scan_ranking(query, left, k)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]

    @pytest.mark.parametrize("min_length", [2, 3, 5])
    def test_identical_across_min_token_lengths(self, sources, min_length):
        left, right = sources
        for query in right:
            indexed = top_k_neighbours(
                query, left, k=None, min_token_length=min_length, indexed=True
            )
            scanned = _scan_ranking(query, left, None, min_token_length=min_length)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]

    def test_identical_on_benchmark_source(self, benchmark_dataset):
        left, right = benchmark_dataset.left, benchmark_dataset.right
        rng = random.Random(5)
        for query in rng.sample(list(right), 6):
            for k in (3, 25, None):
                indexed = top_k_neighbours(query, left, k=k, indexed=True)
                scanned = _scan_ranking(query, left, k)
                assert [r.record_id for r in indexed] == [r.record_id for r in scanned]

    def test_exclusions_are_respected(self, sources):
        left, right = sources
        query = right.get("R0")
        excluded = ("L0", "L3")
        indexed = top_k_neighbours(query, left, k=None, exclude_ids=excluded, indexed=True)
        scanned = _scan_ranking(query, left, None, exclude_ids=excluded)
        assert [r.record_id for r in indexed] == [r.record_id for r in scanned]
        assert all(record.record_id not in excluded for record in indexed)

    def test_zero_overlap_records_fill_in_id_order(self, sources):
        """The scan ranks every candidate, so zero-score records must appear too."""
        left, _ = sources
        query = make_record("Q", "zzzz qqqq", "xxxx wwww", "0.17", source="V")
        indexed = top_k_neighbours(query, left, k=None, indexed=True)
        assert [r.record_id for r in indexed] == sorted(left.ids())

    def test_empty_token_query_ranks_all_by_id(self, sources):
        left, _ = sources
        query = make_record("Q", "", "", "", source="V")
        indexed = top_k_neighbours(query, left, k=3, indexed=True)
        scanned = _scan_ranking(query, left, 3)
        assert [r.record_id for r in indexed] == [r.record_id for r in scanned]
        assert [r.record_id for r in indexed] == sorted(left.ids())[:3]


class TestIndexLifecycle:
    def test_built_once_and_shared_across_queries(self, sources):
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        for query in right:
            index.top_k(query, k=3)
        assert index.builds == 1
        assert index.queries == len(right)

    def test_get_source_index_returns_the_same_instance(self, sources):
        left, _ = sources
        assert get_source_index(left, 2) is get_source_index(left, 2)
        assert get_source_index(left, 2) is not get_source_index(left, 3)

    def test_mutation_triggers_exactly_one_delta_apply(self, sources):
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        query = right.get("R0")
        index.top_k(query, k=2)
        assert index.builds == 1
        newcomer = make_record("L9", "sony bravia theater system", "sony bravia home theater", "201.0")
        left.add(newcomer)
        first = index.top_k(query, k=2)
        second = index.top_k(query, k=2)
        # The journalled mutation is absorbed incrementally: one delta apply
        # serves all post-mutation queries, and no rebuild ever happens.
        assert index.builds == 1
        assert index.delta_applies == 1
        assert "L9" in {record.record_id for record in first}
        assert [r.record_id for r in first] == [r.record_id for r in second]

    def test_stale_index_matches_fresh_scan(self, sources):
        """After a mutation, the indexed ranking equals a scan of the new state."""
        left, right = sources
        top_k_neighbours(right.get("R0"), left, k=None, indexed=True)  # build pre-mutation
        left.add(make_record("L8", "canon powershot camera pro", "canon digital camera", "339.0"))
        for query in right:
            indexed = top_k_neighbours(query, left, k=None, indexed=True)
            scanned = _scan_ranking(query, left, None)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]

    def test_pruning_counters_move_on_selective_queries(self, benchmark_dataset):
        left = benchmark_dataset.left
        index = SourceTokenIndex(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        query = benchmark_dataset.right.records[0]
        result = index.top_k(query, k=5)
        assert len(result) == 5
        assert index.postings_visited > 0
        assert index.candidates_pruned > 0  # top-5 never materialises the whole source
        assert index.stats.as_dict()["index_queries"] == 1


class TestContentHashInvalidation:
    def test_in_place_record_replacement_triggers_rebuild(self, sources):
        """Regression: a record replaced in ``source.records`` without going
        through ``add``/``update`` bypasses ``data_version`` — the index must
        still rebuild (content-hash validation), never serve the stale ranking."""
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        query = right.get("R0")
        index.top_k(query, k=None)
        assert index.builds == 1
        version = left.data_version
        left.records[0] = make_record("L0", "replaced without the api", "in place mutation", "3.14")
        assert left.data_version == version  # the counter never saw the mutation
        indexed = index.top_k(query, k=None)
        assert index.builds == 2
        assert [r.record_id for r in indexed] == [
            r.record_id for r in _scan_ranking(query, left, None)
        ]

    def test_in_place_append_triggers_rebuild(self, sources):
        left, right = sources
        query = right.get("R0")
        top_k_neighbours(query, left, k=None, indexed=True)  # build
        left.records.append(
            make_record("L8", "sony bravia theater deluxe", "sony bravia theater black", "210.0")
        )
        indexed = top_k_neighbours(query, left, k=None, indexed=True)
        scanned = _scan_ranking(query, left, None)
        assert [r.record_id for r in indexed] == [r.record_id for r in scanned]
        assert "L8" in {r.record_id for r in indexed}

    def test_content_identical_update_skips_the_rebuild(self, sources):
        """The hash is *more precise* than the counter: replacing a record
        with an identical copy bumps ``data_version`` but not the content."""
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)
        original = left.get("L1")
        left.update(make_record("L1", *[original.value(a) for a in original.attribute_names()]))
        index.top_k(right.get("R0"), k=2)
        assert index.builds == 1  # same content, no rebuild

    def test_content_equal_revalidation_serves_live_objects(self, sources):
        """A content-equal replacement skips the rebuild but must surface the
        *live* record objects: a replacement can differ in identity (or source
        tag, which is not content) and consumers compare records, not just
        derivations."""
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)
        original = left.get("L1")
        replacement = make_record("L1", *[original.value(a) for a in original.attribute_names()])
        left.update(replacement)
        served = {record.record_id: record for record in index.top_k(right.get("R0"), k=None)}
        assert index.builds == 1  # still no rebuild...
        assert served["L1"] is replacement  # ...but the live object is served


class TestLoadedIndexEquivalence:
    """Warm-loaded indexes must be indistinguishable from built ones."""

    def _warm_copy(self, source, store):
        from repro.data.indexing import _TOKEN_SET_CACHE

        copy = DataSource(name=source.name, schema=source.schema, records=list(source.records))
        copy.artifact_store = store
        _TOKEN_SET_CACHE.clear()
        return copy

    def test_loaded_equals_built_equals_scan(self, sources, tmp_path):
        from repro.data.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "artifacts")
        left, right = sources
        left.artifact_store = store
        built_index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        warm_left = self._warm_copy(left, store)
        loaded_index = get_source_index(warm_left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        for query in right:
            for k in (2, None):
                built = [r.record_id for r in built_index.top_k(query, k=k)]
                loaded = [r.record_id for r in loaded_index.top_k(query, k=k)]
                scanned = [r.record_id for r in _scan_ranking(query, left, k)]
                assert built == loaded == scanned
        assert loaded_index.builds == 0 and loaded_index.loads == 1

    def test_loaded_triangle_search_identical(self, similarity_model, sources, labelled_pairs, tmp_path):
        from repro.data.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path / "artifacts")
        left, right = sources
        left.artifact_store = store
        right.artifact_store = store
        built = [
            find_open_triangles(similarity_model, pair, left, right, count=8, seed=1, indexed=True)
            for pair in labelled_pairs[:3]
        ]
        warm_left = self._warm_copy(left, store)
        warm_right = self._warm_copy(right, store)
        for pair, reference in zip(labelled_pairs[:3], built):
            loaded = find_open_triangles(
                similarity_model, pair, warm_left, warm_right, count=8, seed=1, indexed=True
            )
            scanned = find_open_triangles(
                similarity_model, pair, warm_left, warm_right, count=8, seed=1, indexed=False
            )
            assert (
                _triangle_fingerprint(loaded)
                == _triangle_fingerprint(reference)
                == _triangle_fingerprint(scanned)
            )
        loaded_stats = (
            get_source_index(warm_left, DEFAULT_BLOCKING_TOKEN_LENGTH).stats
            + get_source_index(warm_right, DEFAULT_BLOCKING_TOKEN_LENGTH).stats
        )
        assert loaded_stats.builds == 0 and loaded_stats.loads == 2


class TestBlockingEquivalence:
    @pytest.mark.parametrize("min_length", [2, 3, 50])
    def test_token_blocking_matches_scan(self, sources, min_length):
        left, right = sources
        indexed = token_blocking(left, right, min_token_length=min_length, indexed=True)
        scanned = token_blocking(left, right, min_token_length=min_length, indexed=False)
        assert indexed.pairs == scanned.pairs
        assert indexed.reduction_ratio == scanned.reduction_ratio

    @pytest.mark.parametrize("max_block_size", [1, 3, 200])
    def test_block_size_cap_matches_scan(self, benchmark_dataset, max_block_size):
        left, right = benchmark_dataset.left, benchmark_dataset.right
        indexed = token_blocking(left, right, max_block_size=max_block_size, indexed=True)
        scanned = token_blocking(left, right, max_block_size=max_block_size, indexed=False)
        assert indexed.pairs == scanned.pairs

    def test_candidate_pairs_match_scan(self, benchmark_dataset):
        left, right = benchmark_dataset.left, benchmark_dataset.right
        matches = [
            (pair.left.record_id, pair.right.record_id)
            for pair in benchmark_dataset.train.pairs
            if pair.label
        ][:15]
        indexed = candidate_pairs(left, right, matches, indexed=True)
        scanned = candidate_pairs(left, right, matches, indexed=False)
        assert [(pair.pair_id, pair.label) for pair in indexed] == [
            (pair.pair_id, pair.label) for pair in scanned
        ]


def _triangle_fingerprint(result):
    return (
        [(t.side, t.support.record_id, t.augmented) for t in result.triangles],
        result.requested,
        result.candidates_scored,
        result.augmented_count,
    )


class TestTriangleEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("count", [4, 7, 20])
    def test_indexed_search_identical_to_scan(
        self, similarity_model, sources, labelled_pairs, seed, count
    ):
        left, right = sources
        for pair in labelled_pairs[:3] + labelled_pairs[-2:]:
            indexed = find_open_triangles(
                similarity_model, pair, left, right, count=count, seed=seed, indexed=True
            )
            scanned = find_open_triangles(
                similarity_model, pair, left, right, count=count, seed=seed, indexed=False
            )
            assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)

    def test_equivalence_under_forced_augmentation(self, similarity_model, sources, match_pair):
        left, right = sources
        indexed = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=2,
            force_augmentation=True, indexed=True,
        )
        scanned = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=2,
            force_augmentation=True, indexed=False,
        )
        assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)

    def test_equivalence_without_augmentation(self, similarity_model, sources, non_match_pair):
        left, right = sources
        indexed = find_open_triangles(
            similarity_model, non_match_pair, left, right, count=12, seed=0,
            allow_augmentation=False, max_candidates=4, indexed=True,
        )
        scanned = find_open_triangles(
            similarity_model, non_match_pair, left, right, count=12, seed=0,
            allow_augmentation=False, max_candidates=4, indexed=False,
        )
        assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)

    def test_equivalence_on_benchmark_dataset(self, benchmark_dataset):
        model = SimilarityModel()
        left, right = benchmark_dataset.left, benchmark_dataset.right
        for pair in benchmark_dataset.test.pairs[:4]:
            indexed = find_open_triangles(model, pair, left, right, count=20, seed=1, indexed=True)
            scanned = find_open_triangles(model, pair, left, right, count=20, seed=1, indexed=False)
            assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)

    def test_index_stats_reported_only_when_indexed(self, similarity_model, sources, match_pair):
        left, right = sources
        indexed = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=0, indexed=True
        )
        scanned = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=0, indexed=False
        )
        assert indexed.index_stats is not None
        assert scanned.index_stats is None

    def test_sweep_shares_one_build_per_source(self, similarity_model, sources, labelled_pairs):
        """Across many explained pairs, each source's index is built once."""
        left = DataSource(name=sources[0].name, schema=sources[0].schema, records=list(sources[0].records))
        right = DataSource(name=sources[1].name, schema=sources[1].schema, records=list(sources[1].records))
        pairs = [pair.__class__(left.get(pair.left.record_id), right.get(pair.right.record_id), pair.label)
                 for pair in labelled_pairs]
        total = IndexStats()
        for pair in pairs:
            result = find_open_triangles(similarity_model, pair, left, right, count=6, seed=0, indexed=True)
            total = total + result.index_stats
        assert total.builds <= 2  # at most one build per source for the whole sweep
        assert total.queries >= 1


class TestExplainerEquivalence:
    def test_indexed_explainer_matches_scan_explainer(self, similarity_model, sources, labelled_pairs):
        left, right = sources
        indexed = CertaExplainer(
            similarity_model, left, right, num_triangles=8, seed=0, indexed=True
        )
        scanned = CertaExplainer(
            similarity_model, left, right, num_triangles=8, seed=0, indexed=False
        )
        for pair in (labelled_pairs[0], labelled_pairs[-2]):
            first = indexed.explain_full(pair)
            second = scanned.explain_full(pair)
            assert first.saliency.scores == second.saliency.scores
            assert first.counterfactual.attribute_set == second.counterfactual.attribute_set
            assert first.flips == second.flips
            assert first.triangles_used == second.triangles_used
            assert first.index_stats is not None
            assert second.index_stats is None


class TestFreshnessCost:
    """Each freshness decision costs at most one identity sweep (one
    ``content_hash``), and zero for sealed sources."""

    def _counting_hash(self, source):
        calls = {"n": 0}
        original = source.content_hash

        def counting():
            calls["n"] += 1
            return original()

        source.content_hash = counting
        return calls

    def test_unchanged_source_costs_one_hash_per_query(self, sources):
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)  # build
        calls = self._counting_hash(left)
        index.top_k(right.get("R0"), k=2)
        assert calls["n"] == 1  # regression: the old path swept twice
        index.top_k(right.get("R1"), k=2)
        assert calls["n"] == 2

    def test_delta_replay_costs_one_hash(self, sources):
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)
        left.add(make_record("L9", "sony bravia theater mini", "sony bravia mini", "149.0"))
        calls = self._counting_hash(left)
        ranked = index.top_k(right.get("R0"), k=None)
        # One sweep decides staleness; the replay validates against that same
        # hash instead of sweeping again.
        assert calls["n"] == 1
        assert index.delta_applies == 1
        assert "L9" in {record.record_id for record in ranked}

    def test_sealed_source_snapshot_is_the_live_list(self, sources):
        left, right = sources
        left.seal()
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)
        assert index._snapshot is left.records  # no defensive copy per check
        for query in right:
            index.top_k(query, k=2)
        assert index.builds == 1
        assert index.delta_applies == 0

    def test_sealed_and_unsealed_rankings_are_identical(self):
        sealed_left, right = toy_sources()
        plain_left, _ = toy_sources()
        sealed_left.seal()
        sealed_index = get_source_index(sealed_left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        plain_index = get_source_index(plain_left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        for query in right:
            sealed_ranking = [r.record_id for r in sealed_index.top_k(query, k=None)]
            plain_ranking = [r.record_id for r in plain_index.top_k(query, k=None)]
            assert sealed_ranking == plain_ranking

    def test_seal_after_build_keeps_the_index_warm(self, sources):
        left, right = sources
        index = get_source_index(left, DEFAULT_BLOCKING_TOKEN_LENGTH)
        index.top_k(right.get("R0"), k=2)
        left.seal()
        index.top_k(right.get("R0"), k=2)
        assert index.builds == 1  # sealing an already-indexed source is free
