"""Chaos suite: seeded fault injection against the hardened subsystems.

The differential fuzz suite (``test_datasource_fuzz.py``) proves the library
computes the right answer; this suite proves it computes the *same* right
answer while the world misbehaves.  Every scenario follows one template:

1. compute a fault-free reference result,
2. install a deterministic :class:`repro.faults.FaultPlan`,
3. re-run and assert the rows/rankings/scores are **byte-equal** to the
   reference, with the recovery visible only in the provenance counters
   (``retried``, ``worker_crashes``, ``deadline_exceeded``,
   ``degraded_queries``, ``quarantined``).

Covered faults: transient work-unit errors (retry + backoff), per-unit
deadline overruns, a ``SIGKILL``-ed process-pool worker (pool respawn +
requeue), a real subprocess killed mid-checkpoint-append (torn-line resume),
corrupted artifact bytes (quarantine + rebuild), ``ENOSPC`` during artifact
writes (degrade-to-memory), flaky model invocations (retry + poison-row
bisection) and compiled/dict index-traversal failures (tier degradation down
to the reference scan).

``REPRO_CHAOS_SEED`` shifts the harness and fuzz seeds so the CI matrix runs
the suite under several fixed seeds without any test-code changes.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import env, faults
from repro.data.artifacts import ArtifactStore, write_atomic_npz, write_atomic_text
from repro.data.blocking import token_blocking, top_k_neighbours
from repro.data.indexing import _TOKEN_SET_CACHE, get_source_index
from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.runner import (
    SweepRunner,
    unit_backoff,
    unit_deadline,
    unit_retries,
)
from repro.exceptions import EvaluationError, ModelError, is_transient
from repro.faults import FaultPlan, FaultPlanError, FaultRule, InjectedFault
from repro.models.engine import PredictionEngine

from tests.helpers import SimilarityModel, toy_pairs, toy_sources
from tests.test_datasource_fuzz import _run_sequence

#: The CI chaos matrix sets this to run the whole file under distinct seeds.
CHAOS_SEED = env.read_int("REPRO_CHAOS_SEED")

CONFIG = HarnessConfig(
    datasets=("BA",),
    models=("classical",),
    dataset_scale=0.4,
    pairs_per_dataset=3,
    num_triangles=8,
    lime_samples=16,
    shap_coalitions=16,
    dice_candidates=20,
    fast_models=True,
    seed=3 + CHAOS_SEED,
)

METHODS = ("certa", "shap")


def plan(*rules: FaultRule, state_dir: str = "") -> FaultPlan:
    return FaultPlan(rules=tuple(rules), state_dir=state_dir)


@pytest.fixture(scope="module")
def reference_rows():
    """Fault-free serial saliency rows — the byte-equality oracle."""
    faults.clear_plan()
    return ExperimentHarness(CONFIG).saliency_rows(methods=METHODS)


# --------------------------------------------------------------- plan mechanics


class TestFaultPlanMechanics:
    def test_plan_round_trips_through_json(self):
        original = plan(
            FaultRule(scope="unit.body", kind="kill", step=3, once_key="w1"),
            FaultRule(scope="engine.batch", errno_code=errno.ENOSPC, times=0),
            state_dir="/tmp/chaos-state",
        )
        assert FaultPlan.from_json(original.to_json()) == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultRule(scope="unit.body", kind="meteor")

    def test_unparseable_env_plan_raises_instead_of_running_fault_free(self):
        env.set_raw(faults.FAULT_PLAN_ENV, "{not json")
        with pytest.raises(FaultPlanError, match="unparseable"):
            faults.fault_step("unit.body")

    def test_firing_window_is_deterministic(self):
        faults.install_plan(plan(FaultRule(scope="t", step=2, times=2)))
        assert faults.fault_step("t") is None  # hit 1: before the window
        for _ in range(2):  # hits 2-3: inside
            with pytest.raises(InjectedFault):
                faults.fault_step("t")
        assert faults.fault_step("t") is None  # hit 4: past the window
        assert faults.scope_hits("t") == 4

    def test_unbounded_rule_fires_forever(self):
        faults.install_plan(plan(FaultRule(scope="t", step=2, times=0)))
        assert faults.fault_step("t") is None
        for _ in range(5):
            with pytest.raises(InjectedFault):
                faults.fault_step("t")

    def test_scopes_count_independently(self):
        faults.install_plan(plan(FaultRule(scope="a", step=2)))
        assert faults.fault_step("a") is None
        assert faults.fault_step("b") is None  # does not advance scope "a"
        with pytest.raises(InjectedFault):
            faults.fault_step("a")

    def test_injected_fault_is_a_transient_oserror(self):
        fault = InjectedFault(errno.ENOSPC, "injected")
        assert isinstance(fault, OSError) and fault.errno == errno.ENOSPC
        assert is_transient(fault)
        wrapped = EvaluationError("unit failed")
        wrapped.__cause__ = fault
        assert is_transient(wrapped)  # transience survives exception chaining

    def test_workers_parse_the_plan_from_the_environment(self):
        installed = plan(FaultRule(scope="t", step=1))
        faults.install_plan(installed)
        # Simulate a worker: module state gone, environment inherited.
        faults._ACTIVE_PLAN = None
        faults._ENV_CACHE = (None, None)
        assert faults.active_plan() == installed

    def test_once_key_fires_at_most_once_across_processes(self, tmp_path):
        shared = plan(
            FaultRule(scope="t", kind="error", once_key="crash-1"),
            state_dir=str(tmp_path),
        )
        faults.install_plan(shared)
        with pytest.raises(InjectedFault):
            faults.fault_step("t")
        assert (tmp_path / "fired-crash-1").exists()
        # A second process would reinstall the same plan (fresh counters);
        # the marker file must keep the rule claimed.
        faults.install_plan(shared)
        assert faults.fault_step("t") is None

    def test_env_knobs_parse_and_clamp(self, monkeypatch):
        monkeypatch.setenv("REPRO_UNIT_RETRIES", "5")
        monkeypatch.setenv("REPRO_UNIT_DEADLINE", "-3")
        monkeypatch.setenv("REPRO_UNIT_BACKOFF", "not-a-number")
        assert unit_retries() == 5
        assert unit_deadline() == 0.0  # clamped at zero
        assert unit_backoff() == 0.05  # unparseable: default


# -------------------------------------------------------------- artifact store


def _fresh_sources(store):
    left, right = toy_sources()
    left.artifact_store = store
    right.artifact_store = store
    return left, right


def _scan_ids(query, source):
    return [r.record_id for r in top_k_neighbours(query, list(source), k=None, indexed=False)]


class TestArtifactChaos:
    def test_corrupt_write_is_quarantined_then_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        left, right = _fresh_sources(store)
        query = right.get("R0")
        faults.install_plan(plan(FaultRule(scope="artifact.write", kind="corrupt")))
        reference = [r.record_id for r in get_source_index(left, 2).top_k(query, k=None)]
        assert reference == _scan_ids(query, left)  # corruption is on disk only
        faults.clear_plan()

        left2, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        index = get_source_index(left2, 2)
        rebuilt = [r.record_id for r in index.top_k(query, k=None)]
        assert rebuilt == reference
        assert (index.builds, index.loads) == (1, 0)  # poisoned artifact refused
        assert store.quarantined == 1
        assert list(store.directory.glob("**/*.corrupt-*")), "evidence file missing"
        # The rebuild re-saved a clean artifact: a third consumer warm-loads.
        left3, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        index3 = get_source_index(left3, 2)
        assert [r.record_id for r in index3.top_k(query, k=None)] == reference
        assert (index3.builds, index3.loads) == (0, 1)

    def test_enospc_degrades_to_memory_with_one_warning(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        left, right = _fresh_sources(store)
        query = right.get("R0")
        faults.install_plan(
            plan(FaultRule(scope="artifact.write", errno_code=errno.ENOSPC, times=0))
        )
        with pytest.warns(RuntimeWarning, match="continuing memory-only"):
            reference = [r.record_id for r in get_source_index(left, 2).top_k(query, k=None)]
        assert reference == _scan_ids(query, left)
        assert store.persistence_disabled
        assert not list(store.directory.glob("indexes/*.npz"))
        # Later saves are silent no-ops: no second warning, no exception.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            get_source_index(right, 2).top_k(left.get("L0"), k=None)

    def test_atomic_writers_fsync_before_rename(self, tmp_path, monkeypatch):
        synced: list[int] = []
        replaced: list[int] = []
        real_fsync, real_replace = os.fsync, os.replace

        def recording_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        def recording_replace(src, dst):
            replaced.append(len(synced))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)
        write_atomic_text(tmp_path / "a.json", "{}")
        assert replaced and replaced[0] >= 1  # data fsynced before the rename
        synced.clear()
        replaced.clear()
        write_atomic_npz(tmp_path / "b.npz", {"x": np.arange(3)})
        assert replaced and replaced[0] >= 1


# ------------------------------------------------------------ prediction engine


class _PoisonModel:
    """Raises a transient fault whenever the poison pair is in the batch."""

    def __init__(self, inner, poison_id: str):
        self.inner = inner
        self.poison_id = poison_id

    def predict_proba(self, pairs):
        if any(pair.left.record_id == self.poison_id for pair in pairs):
            raise InjectedFault(errno.EIO, f"poison row {self.poison_id}")
        return self.inner.predict_proba(pairs)


class TestEngineChaos:
    def test_transient_fault_retries_to_identical_scores(self):
        left, right = toy_sources()
        pairs = toy_pairs(left, right)
        reference = PredictionEngine(SimilarityModel()).predict_proba(pairs)
        faults.install_plan(plan(FaultRule(scope="engine.batch", step=1, times=2)))
        engine = PredictionEngine(SimilarityModel())
        scores = engine.predict_proba(pairs)
        assert np.array_equal(scores, reference)
        assert engine.stats.retries == 2
        assert engine.stats.batches == 1  # only the successful invocation counts

    def test_persistent_batch_fault_bisects_to_identical_scores(self):
        left, right = toy_sources()
        pairs = toy_pairs(left, right)[:4]
        reference = PredictionEngine(SimilarityModel()).predict_proba(pairs)
        # The whole batch and its first half keep failing (hits 1-2); the
        # retry budget is zero, so recovery must come from bisection alone.
        faults.install_plan(plan(FaultRule(scope="engine.batch", step=1, times=2)))
        engine = PredictionEngine(SimilarityModel(), batch_size=4, retries=0)
        scores = engine.predict_proba(pairs)
        assert np.array_equal(scores, reference)
        assert engine.stats.batches == 3  # two quarter-chunks + second half

    def test_poison_row_is_isolated_and_named(self):
        left, right = toy_sources()
        pairs = toy_pairs(left, right)
        poison_id = pairs[2].left.record_id
        engine = PredictionEngine(_PoisonModel(SimilarityModel(), poison_id), retries=0)
        with pytest.raises(ModelError, match=f"pair \\({poison_id!r}"):
            engine.predict_proba(pairs)

    def test_permanent_model_failure_propagates_immediately(self):
        class Broken:
            def predict_proba(self, pairs):
                raise ValueError("not a transient failure")

        left, right = toy_sources()
        engine = PredictionEngine(Broken())
        with pytest.raises(ValueError, match="not a transient"):
            engine.predict_proba(toy_pairs(left, right)[:2])
        assert engine.stats.retries == 0


# -------------------------------------------------------------- index fallback


class TestIndexDegradation:
    def test_compiled_fault_falls_back_to_dict_byte_equal(self):
        left, right = toy_sources()
        query = right.get("R0")
        reference = _scan_ids(query, left)
        faults.install_plan(plan(FaultRule(scope="index.compiled", times=1)))
        index = get_source_index(left, 2)
        degraded = [r.record_id for r in index.top_k(query, k=None, tiered=True)]
        assert degraded == reference
        assert index.degraded_queries == 1
        assert index.stats.as_dict()["index_degraded_queries"] == 1

    def test_double_fault_falls_back_to_scan_byte_equal(self):
        left, right = toy_sources()
        query = right.get("R0")
        reference = _scan_ids(query, left)
        faults.install_plan(
            plan(
                FaultRule(scope="index.compiled", times=1),
                FaultRule(scope="index.dict", times=1),
            )
        )
        index = get_source_index(left, 2)
        degraded = [r.record_id for r in index.top_k(query, k=None, tiered=True)]
        assert degraded == reference
        assert index.degraded_queries == 2
        # The next query runs fault-free and serves from the fast tier again.
        assert [r.record_id for r in index.top_k(query, k=3)] == reference[:3]
        assert index.degraded_queries == 2

    def test_bounded_k_and_exclusions_survive_degradation(self):
        left, right = toy_sources()
        query = right.get("R1")
        exclude = (left.ids()[0],)
        reference = [
            r.record_id
            for r in top_k_neighbours(query, list(left), k=3, exclude_ids=exclude, indexed=False)
        ]
        faults.install_plan(
            plan(
                FaultRule(scope="index.compiled", times=0),
                FaultRule(scope="index.dict", times=0),
            )
        )
        index = get_source_index(left, 2)
        result = [r.record_id for r in index.top_k(query, k=3, exclude_ids=exclude, tiered=True)]
        assert result == reference

    def test_posting_items_degrades_at_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        left, right = _fresh_sources(store)
        get_source_index(left, 2).top_k(right.get("R0"), k=3)  # persist the index

        left2, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        index = get_source_index(left2, 2)
        index.ensure_fresh()
        assert index._postings is None  # warm load: dict representation deferred
        reference = {token: sorted(ids) for token, ids in index.posting_items()}
        faults.install_plan(plan(FaultRule(scope="index.compiled", times=1)))
        degraded = {token: sorted(ids) for token, ids in index.posting_items()}
        assert degraded == reference
        assert index.degraded_queries == 1

    def test_ids_sharing_tokens_degrades_at_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        left, right = _fresh_sources(store)
        index = get_source_index(left, 2)
        tokens = list(index.token_set(left.ids()[0]))
        reference = index.ids_sharing_tokens(tokens)
        faults.install_plan(plan(FaultRule(scope="index.compiled", times=0)))
        left2, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        warm = get_source_index(left2, 2)
        warm.ensure_fresh()
        degraded = warm.ids_sharing_tokens(iter(tokens))  # one-shot iterable
        assert degraded == reference

    def test_blocking_stays_byte_equal_under_compiled_faults(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        left, right = _fresh_sources(store)
        reference = token_blocking(left, right, indexed=True)

        left2, right2 = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        faults.install_plan(plan(FaultRule(scope="index.compiled", times=0)))
        degraded = token_blocking(left2, right2, indexed=True)
        assert degraded.pairs == reference.pairs


# ----------------------------------------------------------------- sweep runner


class TestSweepChaos:
    def test_transient_unit_faults_retry_to_identical_rows(self, reference_rows):
        faults.install_plan(plan(FaultRule(scope="unit.body", step=1, times=2)))
        harness = ExperimentHarness(CONFIG, runner=SweepRunner(backoff=0.0))
        rows = harness.saliency_rows(methods=METHODS)
        assert rows == reference_rows
        result = harness.last_sweep
        assert result.retried == 2
        assert result.manifest()["retried"] == 2

    def test_retry_budget_exhaustion_is_a_permanent_failure(self):
        faults.install_plan(plan(FaultRule(scope="unit.body", times=0)))
        harness = ExperimentHarness(CONFIG, runner=SweepRunner(retries=1, backoff=0.0))
        with pytest.raises(EvaluationError, match="saliency/BA/classical"):
            harness.saliency_rows(methods=METHODS)

    def test_deadline_overrun_retries_and_counts(self, reference_rows):
        faults.install_plan(
            plan(FaultRule(scope="unit.body", kind="delay", delay=0.2, times=1))
        )
        runner = SweepRunner(deadline=0.1, backoff=0.0)
        harness = ExperimentHarness(CONFIG, runner=runner)
        rows = harness.saliency_rows(methods=METHODS)
        assert rows == reference_rows
        result = harness.last_sweep
        assert result.deadline_exceeded == 1
        assert result.retried == 1
        assert result.manifest()["deadline_exceeded"] == 1

    def test_rows_carry_the_skip_error_taxonomy(self, reference_rows):
        assert all("skip_errors" in row for row in reference_rows)
        harness = ExperimentHarness(CONFIG)
        rows = harness.saliency_rows(methods=METHODS)
        assert "skipped_errors" in harness.last_sweep.manifest()
        assert rows == reference_rows

    def test_killed_worker_respawns_pool_and_rows_match(self, tmp_path, reference_rows):
        faults.install_plan(
            plan(
                FaultRule(scope="unit.body", kind="kill", once_key="worker-crash"),
                state_dir=str(tmp_path),
            )
        )
        runner = SweepRunner(executor="processes", max_workers=2, backoff=0.0)
        harness = ExperimentHarness(CONFIG, runner=runner)
        rows = harness.saliency_rows(methods=METHODS)
        assert rows == reference_rows
        result = harness.last_sweep
        assert result.worker_crashes >= 1
        assert result.retried >= 1
        assert result.manifest()["worker_crashes"] >= 1
        assert (tmp_path / "fired-worker-crash").exists()

    def test_subprocess_sigkilled_mid_checkpoint_resumes_byte_equal(
        self, tmp_path, reference_rows
    ):
        """A real process dies (SIGKILL) halfway through a checkpoint append;
        the next run must resume from the intact prefix and byte-match."""
        checkpoint = tmp_path / "units.jsonl"
        torn = plan(
            FaultRule(scope="checkpoint.append", kind="torn", step=2), state_dir=str(tmp_path)
        )
        child = subprocess.run(
            [
                sys.executable,
                "-c",
                "import json, sys\n"
                "from repro.eval.harness import ExperimentHarness, HarnessConfig\n"
                "from repro.eval.runner import SweepRunner\n"
                "config = HarnessConfig(**json.loads(sys.argv[1]))\n"
                "runner = SweepRunner(checkpoint=sys.argv[2])\n"
                "ExperimentHarness(config, runner=runner)"
                ".saliency_rows(methods=tuple(json.loads(sys.argv[3])))\n",
                json.dumps(dataclasses.asdict(CONFIG)),
                str(checkpoint),
                json.dumps(list(METHODS)),
            ],
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
                faults.FAULT_PLAN_ENV: torn.to_json(),
            },
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -9, child.stderr  # died of SIGKILL, mid-append
        content = checkpoint.read_text(encoding="utf-8")
        assert not content.endswith("\n")  # the torn fragment is really there

        resumed = ExperimentHarness(CONFIG, runner=SweepRunner(checkpoint=checkpoint))
        assert resumed.saliency_rows(methods=METHODS) == reference_rows
        assert resumed.last_sweep.cached_units == 1  # the intact first unit
        assert resumed.last_sweep.executed_units == 1  # the torn one re-ran

        # The repaired store now parses completely: a third run is all-cache.
        final = ExperimentHarness(CONFIG, runner=SweepRunner(checkpoint=checkpoint))
        assert final.saliency_rows(methods=METHODS) == reference_rows
        assert final.last_sweep.executed_units == 0


# ------------------------------------------------------------------ chaos fuzz


class TestChaosFuzz:
    """Differential fuzz sequences re-run under fault plans.

    ``_run_sequence`` asserts indexed == scan equivalence after every
    mutation; running it with injected traversal and model faults proves the
    degradation tiers preserve those equivalences mid-lifecycle, not just on
    a quiescent index.
    """

    @pytest.mark.parametrize("seed", [CHAOS_SEED * 10 + offset for offset in range(3)])
    def test_fuzz_sequences_survive_traversal_faults(self, seed):
        faults.install_plan(
            plan(
                FaultRule(scope="index.compiled", step=2, times=3),
                FaultRule(scope="index.dict", step=5, times=2),
            )
        )
        _run_sequence(seed)

    @pytest.mark.parametrize("seed", [CHAOS_SEED * 10 + offset for offset in range(2)])
    def test_fuzz_sequences_survive_flaky_model_batches(self, seed):
        faults.install_plan(plan(FaultRule(scope="engine.batch", step=2, times=2)))
        _run_sequence(seed)
