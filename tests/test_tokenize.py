"""Tests for repro.text.tokenize."""

from __future__ import annotations

import pytest

from repro.text.tokenize import (
    iter_sentences,
    qgrams,
    token_ngrams,
    tokenize,
    truncate_tokens,
    whitespace_tokenize,
)


class TestTokenize:
    def test_lowercases_by_default(self):
        assert tokenize("Sony BRAVIA") == ["sony", "bravia"]

    def test_lowercase_can_be_disabled(self):
        assert tokenize("Sony", lowercase=False) == ["ony"] or tokenize("Sony", lowercase=False) == []

    def test_empty_string(self):
        assert tokenize("") == []

    def test_model_numbers_stay_together(self):
        assert "dav-is50" in tokenize("sony bravia dav-is50 / b")

    def test_punctuation_is_stripped(self):
        assert tokenize("hello, world!") == ["hello", "world"]

    def test_numbers_are_tokens(self):
        assert tokenize("price 379.72 usd") == ["price", "379.72", "usd"]


class TestWhitespaceTokenize:
    def test_preserves_punctuation(self):
        assert whitespace_tokenize("a , b") == ["a", ",", "b"]

    def test_empty(self):
        assert whitespace_tokenize("") == []


class TestQgrams:
    def test_padded_qgram_count(self):
        grams = qgrams("abc", q=3)
        assert len(grams) == len("##abc##") - 2

    def test_unpadded_short_string(self):
        assert qgrams("ab", q=3, pad=False) == ["ab"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_qgrams_are_lowercased(self):
        assert all(gram == gram.lower() for gram in qgrams("ABC"))


class TestTokenNgrams:
    def test_bigrams(self):
        assert token_ngrams(["a", "b", "c"], n=2) == [("a", "b"), ("b", "c")]

    def test_too_short_sequence(self):
        assert token_ngrams(["a"], n=2) == []

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            token_ngrams(["a"], n=0)


class TestMisc:
    def test_iter_sentences_splits_on_separators(self):
        assert list(iter_sentences("first part. second part; third")) == [
            "first part", "second part", "third"
        ]

    def test_truncate_tokens_shortens(self):
        assert truncate_tokens("a b c d", 2) == "a b"

    def test_truncate_tokens_noop_when_short(self):
        assert truncate_tokens("a b", 5) == "a b"
