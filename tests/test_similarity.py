"""Tests for repro.text.similarity, including hypothesis property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    attribute_similarity,
    cosine_tokens,
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    overlap_coefficient,
    pair_similarity_profile,
    qgram_similarity,
)

short_text = st.text(alphabet="abcdef 0123", min_size=0, max_size=20)
token_lists = st.lists(st.sampled_from(["sony", "bravia", "black", "micro", "canon", "10"]), max_size=6)


class TestSetSimilarities:
    def test_jaccard_identical(self):
        assert jaccard(["a", "b"], ["a", "b"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_jaccard_one_empty(self):
        assert jaccard(["a"], []) == 0.0

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient(["a"], ["a", "b", "c"]) == 1.0

    def test_dice_known_value(self):
        assert dice_coefficient(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_cosine_identical_bags(self):
        assert cosine_tokens(["a", "a", "b"], ["a", "a", "b"]) == pytest.approx(1.0)

    def test_cosine_disjoint(self):
        assert cosine_tokens(["a"], ["b"]) == 0.0

    @given(token_lists, token_lists)
    @settings(max_examples=50, deadline=None)
    def test_jaccard_is_symmetric_and_bounded(self, left, right):
        value = jaccard(left, right)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaccard(right, left))


class TestEditDistances:
    def test_levenshtein_identical(self):
        assert levenshtein_distance("sony", "sony") == 0

    def test_levenshtein_known_value(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_levenshtein_empty_left(self):
        assert levenshtein_distance("", "abc") == 3

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abd") == pytest.approx(2 / 3)

    def test_levenshtein_similarity_both_empty(self):
        assert levenshtein_similarity("", "") == 1.0

    @given(short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_levenshtein_is_a_metric_on_samples(self, left, right):
        distance = levenshtein_distance(left, right)
        assert distance == levenshtein_distance(right, left)
        assert distance >= abs(len(left) - len(right))
        assert distance <= max(len(left), len(right))


class TestJaro:
    def test_jaro_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_jaro_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_jaro_empty(self):
        assert jaro("", "abc") == 0.0

    def test_jaro_winkler_boosts_prefix(self):
        assert jaro_winkler("prefixes", "prefixed") >= jaro("prefixes", "prefixed")

    @given(short_text, short_text)
    @settings(max_examples=50, deadline=None)
    def test_jaro_winkler_bounded(self, left, right):
        assert 0.0 <= jaro_winkler(left, right) <= 1.0 + 1e-9


class TestCompositeSimilarities:
    def test_monge_elkan_identical_tokens(self):
        assert monge_elkan(["sony", "bravia"], ["sony", "bravia"]) == pytest.approx(1.0)

    def test_monge_elkan_empty(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0

    def test_qgram_similarity_identical(self):
        assert qgram_similarity("bravia", "bravia") == 1.0

    def test_numeric_similarity_equal_numbers(self):
        assert numeric_similarity("10", "10.0") == 1.0

    def test_numeric_similarity_relative(self):
        assert numeric_similarity("100", "50") == pytest.approx(0.5)

    def test_numeric_similarity_non_numeric_falls_back_to_equality(self):
        assert numeric_similarity("ten", "ten") == 1.0
        assert numeric_similarity("ten", "eleven") == 0.0

    def test_attribute_similarity_missing_values(self):
        assert attribute_similarity("", "") == 1.0
        assert attribute_similarity("sony", "") == 0.0

    def test_attribute_similarity_orders_sensibly(self):
        close = attribute_similarity("sony bravia theater", "sony bravia theater system")
        far = attribute_similarity("sony bravia theater", "canon photo printer")
        assert close > far

    @given(short_text, short_text)
    @settings(max_examples=50, deadline=None)
    def test_attribute_similarity_bounded_and_symmetric(self, left, right):
        value = attribute_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(attribute_similarity(right, left), abs=1e-9)

    def test_pair_similarity_profile_alignment(self):
        profile = pair_similarity_profile(["a", "b"], ["a", "c"])
        assert len(profile) == 2
        assert profile[0] == 1.0

    def test_pair_similarity_profile_requires_alignment(self):
        with pytest.raises(ValueError):
            pair_similarity_profile(["a"], ["a", "b"])
