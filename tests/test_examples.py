"""Smoke tests for the example scripts.

Running every example end-to-end would dominate the test-suite runtime, so the
tests check that each script compiles, documents itself, and exposes a ``main``
entry point; the quickstart-style workflow itself is covered by the dedicated
integration test at the bottom.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleScripts:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.name)
    def test_example_compiles(self, path):
        source = path.read_text(encoding="utf-8")
        compile(source, str(path), "exec")

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.name)
    def test_example_has_docstring_and_main(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} needs a module docstring"
        function_names = {node.name for node in tree.body if isinstance(node, ast.FunctionDef)}
        assert "main" in function_names, f"{path.name} needs a main() entry point"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda path: path.name)
    def test_example_only_imports_public_api(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                # Examples must use the documented public packages.
                top_level = node.module.split(".")[1] if "." in node.module else ""
                assert top_level in {"", "data", "models", "certa", "explain", "eval", "serve", "text"}


class TestQuickstartWorkflow:
    def test_end_to_end_quickstart_workflow(self, ab_dataset, trained_classical):
        """The workflow of examples/quickstart.py, on the session-cached model."""
        from repro.certa import CertaExplainer

        model = trained_classical.model
        explainer = CertaExplainer(model, ab_dataset.left, ab_dataset.right, num_triangles=10, seed=0)
        pair = ab_dataset.test.positives()[0]
        explanation = explainer.explain_full(pair)
        assert explanation.saliency.scores
        assert 0.0 <= explanation.prediction <= 1.0
