"""Tests for repro.data.dataset: PairSplit, ERDataset, split_pairs."""

from __future__ import annotations

import random

import pytest

from repro.data.dataset import ERDataset, PairSplit, build_dataset, split_pairs
from repro.data.records import RecordPair
from repro.exceptions import DatasetError

from tests.helpers import make_record, toy_pairs, toy_sources


class TestPairSplit:
    def test_labels(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        assert split.labels() == [pair.label for pair in labelled_pairs]

    def test_labels_raise_on_unlabelled(self, labelled_pairs):
        unlabelled = labelled_pairs[0].with_label(None)
        split = PairSplit("train", [unlabelled])
        with pytest.raises(DatasetError):
            split.labels()

    def test_positives_and_negatives(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        assert len(split.positives()) == 4
        assert len(split.negatives()) == 6

    def test_match_ratio(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        assert split.match_ratio() == pytest.approx(0.4)

    def test_match_ratio_empty_split(self):
        assert PairSplit("empty").match_ratio() == 0.0

    def test_sample_unbalanced(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        assert len(split.sample(3, rng=random.Random(0))) == 3

    def test_sample_more_than_population(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        assert len(split.sample(100)) == len(labelled_pairs)

    def test_sample_balanced_has_both_classes(self, labelled_pairs):
        split = PairSplit("train", labelled_pairs)
        sampled = split.sample(4, rng=random.Random(1), balanced=True)
        labels = {pair.label for pair in sampled}
        assert labels == {True, False}


class TestSplitPairs:
    def test_partition_covers_everything(self, labelled_pairs):
        train, valid, test = split_pairs(labelled_pairs, rng=random.Random(0))
        assert len(train) + len(valid) + len(test) == len(labelled_pairs)

    def test_no_overlap_between_splits(self, labelled_pairs):
        train, valid, test = split_pairs(labelled_pairs, rng=random.Random(0))
        ids = [pair.pair_id for split in (train, valid, test) for pair in split]
        assert len(ids) == len(set(ids))

    def test_stratification_keeps_positives_in_every_split(self, labelled_pairs):
        train, valid, test = split_pairs(
            labelled_pairs, train_fraction=0.5, valid_fraction=0.25, rng=random.Random(3)
        )
        assert len(train.positives()) >= 1
        assert len(test.positives()) >= 1

    def test_invalid_train_fraction_rejected(self, labelled_pairs):
        with pytest.raises(DatasetError):
            split_pairs(labelled_pairs, train_fraction=1.5)

    def test_invalid_fraction_sum_rejected(self, labelled_pairs):
        with pytest.raises(DatasetError):
            split_pairs(labelled_pairs, train_fraction=0.8, valid_fraction=0.3)

    def test_unstratified_split_also_partitions(self, labelled_pairs):
        train, valid, test = split_pairs(labelled_pairs, stratified=False, rng=random.Random(0))
        assert len(train) + len(valid) + len(test) == len(labelled_pairs)


class TestERDataset:
    def test_schemas_exposed(self, dataset):
        assert dataset.left_schema.attributes == ("name", "description", "price")
        assert dataset.right_schema.attributes == ("name", "description", "price")

    def test_all_pairs_and_matches(self, dataset):
        assert len(dataset.all_pairs()) == 10
        assert all(pair.label for pair in dataset.matches())

    def test_statistics_keys(self, dataset):
        stats = dataset.statistics()
        assert stats["attributes_left"] == 3
        assert stats["records_left"] == 6
        assert stats["matches"] == 4

    def test_validation_rejects_foreign_records(self, sources, labelled_pairs):
        left, right = sources
        rogue_pair = RecordPair(
            make_record("GHOST", "ghost", "ghost", "0"), right.get("R0"), True
        )
        with pytest.raises(DatasetError):
            ERDataset(
                name="bad",
                left=left,
                right=right,
                train=PairSplit("train", [rogue_pair]),
                valid=PairSplit("valid", []),
                test=PairSplit("test", []),
            )

    def test_subset_limits_test_pairs(self, dataset):
        reduced = dataset.subset(max_test_pairs=1)
        assert len(reduced.test) == 1
        assert len(reduced.train) == len(dataset.train)

    def test_build_dataset_splits(self, sources, labelled_pairs):
        left, right = sources
        built = build_dataset("built", left, right, labelled_pairs, rng=random.Random(5))
        assert len(built.all_pairs()) == len(labelled_pairs)
        assert built.name == "built"
