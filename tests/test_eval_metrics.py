"""Tests for the explanation-evaluation metrics (repro.eval)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import MISSING_VALUE
from repro.eval.counterfactual_metrics import (
    average_metrics,
    diversity,
    example_distance,
    example_proximity,
    example_sparsity,
    proximity,
    sparsity,
    validity,
)
from repro.eval.logistic import RidgeRegressor, cross_validated_mae
from repro.eval.masking import attributes_to_mask, mask_attributes, mask_single_attribute, mask_top_fraction
from repro.eval.saliency_metrics import (
    FAITHFULNESS_THRESHOLDS,
    actual_saliency,
    aggregate_at_k,
    confidence_indication,
    faithfulness,
    saliency_alignment,
)
from repro.exceptions import EvaluationError, NotFittedError
from repro.explain.base import CounterfactualExample, CounterfactualExplanation, SaliencyExplanation
from repro.explain.sampling import perturb_pair


def make_saliency(pair, scores, prediction=0.9):
    return SaliencyExplanation(pair=pair, prediction=prediction, scores=scores, method="test")


def make_counterfactual(pair, examples, prediction=0.9):
    return CounterfactualExplanation(
        pair=pair, prediction=prediction, examples=examples, method="test"
    )


class TestMasking:
    def test_mask_attributes_blanks_values(self, match_pair):
        masked = mask_attributes(match_pair, ["left_name", "right_price"])
        assert masked.left.value("name") == MISSING_VALUE
        assert masked.right.value("price") == MISSING_VALUE

    def test_mask_single_attribute(self, match_pair):
        masked = mask_single_attribute(match_pair, "left_description")
        assert masked.left.value("description") == MISSING_VALUE
        assert masked.left.value("name") == match_pair.left.value("name")

    def test_attributes_to_mask_uses_ceiling(self, match_pair):
        explanation = make_saliency(match_pair, {"left_name": 0.9, "left_price": 0.5, "right_name": 0.2})
        assert attributes_to_mask(explanation, 0.1) == ["left_name"]
        assert len(attributes_to_mask(explanation, 0.5)) == 3

    def test_attributes_to_mask_invalid_fraction(self, match_pair):
        explanation = make_saliency(match_pair, {"left_name": 0.9})
        with pytest.raises(ValueError):
            attributes_to_mask(explanation, 1.5)

    def test_mask_top_fraction_full(self, match_pair):
        explanation = make_saliency(
            match_pair,
            {name: 1.0 for name in match_pair.attribute_names()},
        )
        masked = mask_top_fraction(match_pair, explanation, 1.0)
        assert all(not value for value in masked.left.values.values())


class TestFaithfulness:
    def test_good_explanations_have_lower_auc(self, similarity_model, labelled_pairs):
        pairs = labelled_pairs[:6]
        informative, uninformative = [], []
        for pair in pairs:
            reference = actual_saliency(similarity_model, pair)
            informative.append(make_saliency(pair, reference, similarity_model.predict_pair(pair)))
            # Anti-informative: invert the reference ranking.
            worst = {name: -value for name, value in reference.items()}
            uninformative.append(make_saliency(pair, worst, similarity_model.predict_pair(pair)))
        good = faithfulness(similarity_model, informative).auc
        bad = faithfulness(similarity_model, uninformative).auc
        assert good <= bad + 1e-9

    def test_result_contains_curve(self, similarity_model, labelled_pairs):
        explanations = [
            make_saliency(pair, {"left_name": 1.0}, similarity_model.predict_pair(pair))
            for pair in labelled_pairs[:4]
        ]
        result = faithfulness(similarity_model, explanations)
        assert result.thresholds == FAITHFULNESS_THRESHOLDS
        assert len(result.f1_at_threshold) == len(FAITHFULNESS_THRESHOLDS)
        assert set(result.as_dict()) >= {"faithfulness_auc"}

    def test_empty_explanations_rejected(self, similarity_model):
        with pytest.raises(EvaluationError):
            faithfulness(similarity_model, [])

    def test_unlabelled_pairs_rejected(self, similarity_model, match_pair):
        unlabelled = match_pair.with_label(None)
        with pytest.raises(EvaluationError):
            faithfulness(similarity_model, [make_saliency(unlabelled, {"left_name": 1.0})])


class TestConfidenceIndication:
    def test_informative_scores_give_lower_mae(self, match_pair, non_match_pair):
        rng = np.random.default_rng(0)
        informative, noise = [], []
        for index in range(24):
            pair = match_pair if index % 2 == 0 else non_match_pair
            confidence = float(rng.uniform(0.5, 1.0))
            prediction = confidence if index % 2 == 0 else 1.0 - confidence
            # Informative: max saliency tracks the confidence exactly.
            informative.append(make_saliency(pair, {"left_name": confidence, "left_price": 0.0}, prediction))
            noise.append(make_saliency(pair, {"left_name": float(rng.random()), "left_price": 0.0}, prediction))
        assert confidence_indication(informative) <= confidence_indication(noise)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            confidence_indication([])


class TestCaseStudyHelpers:
    def test_actual_saliency_covers_all_attributes(self, similarity_model, match_pair):
        reference = actual_saliency(similarity_model, match_pair)
        assert set(reference) == set(match_pair.attribute_names())
        assert all(value >= 0.0 for value in reference.values())

    def test_aggregate_at_k_reports_requested_ks(self, similarity_model, match_pair):
        reference = actual_saliency(similarity_model, match_pair)
        explanation = make_saliency(match_pair, reference, similarity_model.predict_pair(match_pair))
        aggregates = aggregate_at_k(similarity_model, explanation, k_values=(1, 3, 6))
        assert set(aggregates) == {1, 3, 6}
        assert all(value >= 0.0 for value in aggregates.values())

    def test_saliency_alignment_perfect_and_zero(self, match_pair):
        reference = {"left_name": 0.9, "left_description": 0.6, "left_price": 0.1}
        aligned = make_saliency(match_pair, reference)
        assert saliency_alignment(aligned, reference, top_k=2) == 1.0
        disjoint = make_saliency(match_pair, {"right_price": 1.0, "right_name": 0.9})
        assert saliency_alignment(disjoint, reference, top_k=2) == 0.0


class TestCounterfactualMetrics:
    def _example(self, pair, changed, operator="drop"):
        perturbed = perturb_pair(pair, changed, operator=operator)
        return CounterfactualExample(
            pair=perturbed, changed_attributes=tuple(changed), score=0.1, original_score=0.9
        )

    def test_proximity_decreases_with_more_changes(self, match_pair):
        one_change = make_counterfactual(match_pair, [self._example(match_pair, ["left_name"])])
        many_changes = make_counterfactual(
            match_pair,
            [self._example(match_pair, ["left_name", "left_description", "right_name"])],
        )
        assert proximity(one_change) > proximity(many_changes)

    def test_sparsity_counts_unchanged_attributes(self, match_pair):
        explanation = make_counterfactual(match_pair, [self._example(match_pair, ["left_name"])])
        assert sparsity(explanation) == pytest.approx(5 / 6)

    def test_identity_example_has_perfect_proximity(self, match_pair):
        identical = CounterfactualExample(
            pair=match_pair, changed_attributes=(), score=0.1, original_score=0.9
        )
        explanation = make_counterfactual(match_pair, [identical])
        assert proximity(explanation) == pytest.approx(1.0)
        assert sparsity(explanation) == pytest.approx(1.0)

    def test_diversity_zero_for_single_example(self, match_pair):
        explanation = make_counterfactual(match_pair, [self._example(match_pair, ["left_name"])])
        assert diversity(explanation) == 0.0

    def test_diversity_positive_for_different_examples(self, match_pair):
        explanation = make_counterfactual(
            match_pair,
            [
                self._example(match_pair, ["left_name"]),
                self._example(match_pair, ["right_description"]),
            ],
        )
        assert diversity(explanation) > 0.0

    def test_validity(self, match_pair):
        flipping = self._example(match_pair, ["left_name"])
        non_flipping = CounterfactualExample(
            pair=match_pair, changed_attributes=(), score=0.8, original_score=0.9
        )
        explanation = make_counterfactual(match_pair, [flipping, non_flipping])
        assert validity(explanation) == pytest.approx(0.5)

    def test_validity_zero_when_empty(self, match_pair):
        assert validity(make_counterfactual(match_pair, [])) == 0.0

    def test_empty_metrics_rejected(self):
        with pytest.raises(EvaluationError):
            average_metrics([])

    def test_average_metrics_keys(self, match_pair):
        explanation = make_counterfactual(match_pair, [self._example(match_pair, ["left_name"])])
        metrics = average_metrics([explanation])
        assert set(metrics) == {"proximity", "sparsity", "diversity", "validity", "count"}

    def test_example_distance_symmetry(self, match_pair):
        first = self._example(match_pair, ["left_name"])
        second = self._example(match_pair, ["right_name"])
        assert example_distance(first, second) == pytest.approx(example_distance(second, first))

    def test_example_proximity_plus_distance_consistency(self, match_pair):
        example = self._example(match_pair, ["left_name"])
        assert 0.0 <= example_proximity(example, match_pair) <= 1.0
        assert 0.0 <= example_sparsity(example, match_pair) <= 1.0


class TestRidgeRegressor:
    def test_fits_linear_relationship(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(0, 1, size=(50, 2))
        targets = np.clip(0.5 * features[:, 0] + 0.3, 0, 1)
        model = RidgeRegressor(regularisation=1e-6).fit(features, targets)
        predictions = model.predict(features)
        assert np.mean(np.abs(predictions - targets)) < 0.01

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RidgeRegressor().predict(np.zeros((2, 2)))

    def test_predictions_clipped_to_unit_interval(self):
        features = np.array([[0.0], [10.0]])
        targets = np.array([0.0, 5.0])
        model = RidgeRegressor(regularisation=1e-6).fit(features, targets)
        assert np.all(model.predict(np.array([[100.0]])) <= 1.0)

    def test_cross_validated_mae_small_sample_fallback(self):
        features = np.array([[0.1], [0.2]])
        targets = np.array([0.1, 0.2])
        assert cross_validated_mae(features, targets) >= 0.0

    def test_cross_validated_mae_reasonable(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(0, 1, size=(60, 3))
        targets = np.clip(features @ np.array([0.2, 0.3, 0.1]), 0, 1)
        assert cross_validated_mae(features, targets) < 0.05
