"""Tests for the work-unit sweep runner: executors, checkpointing, determinism.

The contract under test (see ``repro/eval/runner.py``):

* ``serial``, ``threads`` and ``processes`` executors produce identical,
  deterministically-ordered row lists for the same configuration;
* an interrupted sweep (simulated by truncating the checkpoint store) resumes
  and its merged rows equal an uninterrupted run's, byte for byte;
* changing the configuration invalidates the checkpoint cache (config hash);
* skipped explanations are counted per unit and surfaced as a ``skipped``
  column in every experiment's rows instead of being silently dropped.
"""

from __future__ import annotations

import json

import pytest

from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.runner import (
    CheckpointStore,
    SweepRunner,
    WorkUnit,
    config_hash,
    execute_unit,
    experiment_runner,
    normalise_row,
)
from repro.exceptions import EvaluationError

TINY = HarnessConfig(
    datasets=("BA",),
    models=("classical",),
    dataset_scale=0.4,
    pairs_per_dataset=4,
    num_triangles=8,
    lime_samples=16,
    shap_coalitions=16,
    dice_candidates=20,
    fast_models=True,
    seed=3,
)

METHODS = ("certa", "shap")


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(TINY)


@pytest.fixture(scope="module")
def serial_rows(harness):
    """Reference saliency rows from the serial executor."""
    return harness.saliency_rows(methods=METHODS)


class TestWorkUnit:
    def test_unit_id_is_stable_and_content_derived(self):
        first = WorkUnit("saliency", dataset="BA", model="classical", method="certa")
        second = WorkUnit("saliency", dataset="BA", model="classical", method="certa")
        assert first.unit_id == second.unit_id
        assert first.unit_id != WorkUnit("saliency", dataset="AB").unit_id

    def test_params_change_the_unit_id(self):
        base = WorkUnit("monotonicity", dataset="BA", params=(("pairs_per_dataset", 2),))
        other = WorkUnit("monotonicity", dataset="BA", params=(("pairs_per_dataset", 3),))
        assert base.unit_id != other.unit_id

    def test_param_lookup_with_default(self):
        unit = WorkUnit("saliency", params=(("tau", 12),))
        assert unit.param("tau") == 12
        assert unit.param("missing", 7) == 7

    def test_canonical_ordering(self):
        units = [
            WorkUnit("saliency", dataset="FZ", model="ditto", method="shap"),
            WorkUnit("saliency", dataset="AB", model="ditto", method="shap"),
            WorkUnit("saliency", dataset="AB", model="deeper", method="certa"),
        ]
        ordered = sorted(units)
        assert [(unit.dataset, unit.model) for unit in ordered] == [
            ("AB", "deeper"), ("AB", "ditto"), ("FZ", "ditto"),
        ]

    def test_as_dict_is_json_serialisable(self):
        unit = WorkUnit("triangle_sweep", dataset="BA", index=5, params=(("models", ("a", "b")),))
        payload = json.dumps(unit.as_dict())
        assert "triangle_sweep" in payload

    def test_unknown_experiment_raises(self, harness):
        with pytest.raises(EvaluationError, match="unknown experiment"):
            execute_unit(WorkUnit("no-such-experiment"), harness)


class TestConfigHash:
    def test_same_config_same_hash(self):
        assert config_hash(TINY) == config_hash(HarnessConfig(**TINY.__dict__))

    def test_any_field_change_changes_the_hash(self):
        assert config_hash(TINY) != config_hash(TINY.with_overrides(num_triangles=9))
        assert config_hash(TINY) != config_hash(TINY.with_overrides(seed=4))


class TestNormalisation:
    def test_numpy_scalars_become_plain_python(self):
        import numpy as np

        row = normalise_row({"value": np.float64(1.5), "count": np.int64(3), "flag": np.bool_(True)})
        assert type(row["value"]) is float and type(row["count"]) is int and type(row["flag"]) is bool

    def test_rows_round_trip_through_json(self, serial_rows):
        restored = json.loads(json.dumps(serial_rows))
        assert restored == serial_rows


class TestCheckpointStore:
    def test_append_load_round_trip(self, tmp_path, harness):
        store = CheckpointStore(tmp_path / "units.jsonl")
        unit = WorkUnit("saliency", dataset="BA", model="classical", method="certa")
        outcome = execute_unit(unit, harness)
        store.append("digest", outcome)
        loaded = store.load("digest")
        assert loaded[unit.unit_id]["rows"] == outcome.rows
        assert loaded[unit.unit_id]["skipped"] == outcome.skipped

    def test_load_filters_by_config_hash(self, tmp_path, harness):
        store = CheckpointStore(tmp_path / "units.jsonl")
        unit = WorkUnit("saliency", dataset="BA", model="classical", method="certa")
        store.append("digest-a", execute_unit(unit, harness))
        assert store.load("digest-b") == {}

    def test_load_tolerates_corrupt_and_truncated_lines(self, tmp_path):
        path = tmp_path / "units.jsonl"
        good = json.dumps({"config": "d", "unit": "u1", "rows": [{"x": 1}], "skipped": 0})
        path.write_text(good + "\n" + "not json at all\n" + good[:25])
        store = CheckpointStore(path)
        loaded = store.load("d")
        assert set(loaded) == {"u1"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointStore(tmp_path / "absent.jsonl").load("d") == {}


class TestExecutorEquivalence:
    """Satellite: serial vs parallel executors must return identical rows."""

    def test_threads_match_serial(self, serial_rows):
        runner = SweepRunner(executor="threads", max_workers=4)
        rows = ExperimentHarness(TINY, runner=runner).saliency_rows(methods=METHODS)
        assert rows == serial_rows

    def test_processes_match_serial(self, serial_rows):
        runner = SweepRunner(executor="processes", max_workers=2)
        rows = ExperimentHarness(TINY, runner=runner).saliency_rows(methods=METHODS)
        assert rows == serial_rows

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError, match="unknown executor"):
            SweepRunner(executor="fleet")

    def test_rows_are_in_canonical_unit_order(self, serial_rows):
        keys = [(row["dataset"], row["model"], row["method"]) for row in serial_rows]
        assert keys == sorted(keys)

    def test_shuffled_units_produce_identical_rows(self, harness, serial_rows):
        units = harness.saliency_units(methods=METHODS)
        shuffled = list(reversed(units)) + units  # duplicates are deduplicated too
        assert harness.sweep(shuffled).rows == serial_rows


class TestCheckpointResume:
    """Satellite: kill a sweep mid-run (truncate the store), resume, compare."""

    def test_resumed_run_matches_uninterrupted_run(self, tmp_path, serial_rows):
        path = tmp_path / "units.jsonl"
        first = ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path))
        uninterrupted = first.saliency_rows(methods=METHODS)
        assert uninterrupted == serial_rows

        # Simulate a kill mid-run: drop the last completed unit and leave a
        # partially-written line behind, exactly what an interrupt produces.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(first.last_sweep.outcomes)
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        resumed = ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path))
        assert resumed.saliency_rows(methods=METHODS) == uninterrupted
        assert resumed.last_sweep.cached_units == len(lines) - 1
        assert resumed.last_sweep.executed_units == 1

    def test_full_cache_reuses_every_unit(self, tmp_path, serial_rows):
        path = tmp_path / "units.jsonl"
        ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path)).saliency_rows(methods=METHODS)
        resumed = ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path))
        assert resumed.saliency_rows(methods=METHODS) == serial_rows
        assert resumed.last_sweep.executed_units == 0

    def test_config_change_invalidates_the_cache(self, tmp_path):
        path = tmp_path / "units.jsonl"
        ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path)).saliency_rows(methods=METHODS)
        changed = ExperimentHarness(
            TINY.with_overrides(num_triangles=6), runner=SweepRunner(checkpoint=path)
        )
        changed.saliency_rows(methods=("certa",))
        assert changed.last_sweep.cached_units == 0
        assert changed.last_sweep.executed_units == 1

    def test_manifest_written_per_experiment_next_to_the_store(self, tmp_path):
        path = tmp_path / "units.jsonl"
        harness = ExperimentHarness(TINY, runner=SweepRunner(checkpoint=path))
        harness.saliency_rows(methods=("certa",))
        manifest = json.loads((tmp_path / "units.saliency.manifest.json").read_text(encoding="utf-8"))
        assert manifest["config"] == config_hash(TINY)
        assert manifest["units_total"] == 1
        assert manifest["experiments"] == ["saliency"]
        # A second experiment sharing the store gets its own manifest file.
        harness.monotonicity_rows(datasets=("BA",), model_name="classical", pairs_per_dataset=1, triangles_per_pair=2)
        assert (tmp_path / "units.monotonicity.manifest.json").exists()
        assert (tmp_path / "units.saliency.manifest.json").exists()


class TestSkippedAccounting:
    """Satellite: ExplanationError is counted, not silently swallowed."""

    def test_every_experiment_row_carries_a_skipped_column(self, harness):
        row_lists = [
            harness.saliency_rows(methods=("certa",)),
            harness.counterfactual_rows(methods=("certa",)),
            harness.triangle_sweep_rows(triangle_counts=(4,), datasets=("BA",), models=("classical",), pairs_per_dataset=2),
            harness.monotonicity_rows(datasets=("BA",), model_name="classical", pairs_per_dataset=1, triangles_per_pair=2),
            harness.prediction_engine_rows(datasets=("BA",), model_name="classical", pairs_per_dataset=2),
            harness.augmentation_supply_rows(datasets=("BA",), models=("classical",), target_triangles=10, pairs_per_dataset=1),
            harness.augmentation_effect_rows(datasets=("BA",), models=("classical",), pairs_per_dataset=2),
            harness.case_study_rows(code="BA", model_name="classical", max_pairs=1, methods=("certa",)),
            harness.monotone_ablation_rows(code="BA", model_name="classical", num_triangles=4, pairs_per_dataset=2),
        ]
        for rows in row_lists:
            assert rows
            for row in rows:
                assert isinstance(row["skipped"], int) and row["skipped"] >= 0

    def test_skip_counts_propagate_to_rows_store_and_manifest(self, tmp_path, harness):
        flaky_calls = {"count": 0}

        @experiment_runner("test_flaky")
        def _flaky(harness, unit):  # registered for this test only
            flaky_calls["count"] += 1
            return [{"dataset": unit.dataset, "value": 1.0, "skipped": 2}], 2

        runner = SweepRunner(checkpoint=tmp_path / "units.jsonl")
        result = runner.run([WorkUnit("test_flaky", dataset="BA")], harness=harness)
        assert result.skipped == 2
        assert result.rows[0]["skipped"] == 2
        assert result.manifest()["skipped"] == 2
        # The stored entry keeps the skip count for resumed runs.
        resumed = runner.run([WorkUnit("test_flaky", dataset="BA")], harness=harness)
        assert flaky_calls["count"] == 1
        assert resumed.skipped == 2


class TestSweepResult:
    def test_manifest_reconciles_with_outcomes(self, harness):
        rows = harness.saliency_rows(methods=METHODS)
        manifest = harness.last_sweep.manifest()
        assert manifest["rows"] == len(rows)
        assert manifest["units_total"] == manifest["units_cached"] + manifest["units_executed"]
        assert manifest["executor"] == "serial"

    def test_failed_unit_names_the_cell(self, harness):
        with pytest.raises(EvaluationError, match="saliency/BA/classical/nope"):
            harness.saliency_rows(methods=("nope",))


# ------------------------------------------------------------------- map_tasks

from repro.eval.runner import task_runner  # noqa: E402


@task_runner("test_square")
def _square_task(payload):
    return payload * payload


@task_runner("test_fragile")
def _fragile_task(payload):
    if payload == "bad":
        raise ValueError("poison payload reached the task body")
    return payload.upper()


@task_runner("test_crash_once")
def _crash_once_task(payload):
    """SIGKILL the hosting process the first time a marker can be claimed."""
    import os as _os
    import signal as _signal

    try:
        with open(payload, "x", encoding="utf-8"):
            pass
        _os.kill(_os.getpid(), _signal.SIGKILL)
    except FileExistsError:
        pass
    return "survived"


class TestMapTasks:
    """Satellite: failure paths of ``SweepRunner.map_tasks`` per executor."""

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_results_in_payload_order(self, executor):
        runner = SweepRunner(executor=executor, max_workers=2)
        assert runner.map_tasks("test_square", [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_empty_payloads_return_empty(self, executor):
        assert SweepRunner(executor=executor).map_tasks("test_square", []) == []

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_worker_exception_mid_shard_propagates(self, executor):
        runner = SweepRunner(executor=executor, max_workers=2)
        with pytest.raises(ValueError, match="poison payload"):
            runner.map_tasks("test_fragile", ["ok", "bad", "fine"])

    def test_pool_width_one_still_completes(self):
        runner = SweepRunner(executor="threads", max_workers=1)
        assert runner.map_tasks("test_square", [2, 3]) == [4, 9]
        runner = SweepRunner(executor="processes", max_workers=1)
        assert runner.map_tasks("test_square", [2, 3]) == [4, 9]

    def test_unknown_task_name_rejected(self):
        with pytest.raises(EvaluationError, match="unknown task"):
            SweepRunner().map_tasks("test_never_registered", [1])

    def test_crashed_worker_is_respawned_and_requeued(self, tmp_path):
        runner = SweepRunner(executor="processes", max_workers=2, retries=2)
        marker = str(tmp_path / "crash-marker")
        results = runner.map_tasks("test_crash_once", [marker, marker])
        assert results == ["survived", "survived"]
        assert runner._worker_crashes >= 1

    def test_deterministic_crasher_gives_up_with_a_permanent_error(self, tmp_path):
        @task_runner("test_crash_always")
        def _crash_always(payload):
            import os as _os
            import signal as _signal

            _os.kill(_os.getpid(), _signal.SIGKILL)

        runner = SweepRunner(executor="processes", max_workers=2, retries=1)
        with pytest.raises(EvaluationError, match="crashed its worker"):
            runner.map_tasks("test_crash_always", ["a", "b"])
