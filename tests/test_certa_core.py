"""Tests for CERTA's perturbation, augmentation, triangle search and explainer."""

from __future__ import annotations

import random

import pytest

import numpy as np

from repro.certa.augmentation import augment_records, record_variants, value_token_drops
from repro.certa.explainer import CertaExplainer
from repro.certa.perturbation import perturb_record, perturbed_pair
from repro.certa.tokens import token_saliency
from repro.certa.triangles import (
    _find_side_triangles,
    _support_content_key,
    find_open_triangles,
)
from repro.data.records import RecordPair
from repro.data.table import DataSource
from repro.exceptions import ExplanationError, TriangleError
from repro.models.base import MATCH_THRESHOLD

from tests.helpers import LEFT_SCHEMA, make_record


class TestPerturbation:
    def test_perturb_record_copies_requested_attributes(self, sources):
        left, _ = sources
        free, support = left.get("L0"), left.get("L1")
        perturbed = perturb_record(free, support, ["name"])
        assert perturbed.value("name") == support.value("name")
        assert perturbed.value("description") == free.value("description")

    def test_perturb_record_unknown_attribute_raises(self, sources):
        left, _ = sources
        with pytest.raises(ExplanationError):
            perturb_record(left.get("L0"), left.get("L1"), ["bogus"])

    def test_perturbed_pair_left_side(self, sources, match_pair):
        left, _ = sources
        support = left.get("L2")
        perturbed = perturbed_pair(match_pair, "left", support, ["name", "price"])
        assert perturbed.left.value("name") == support.value("name")
        assert perturbed.right is match_pair.right

    def test_perturbed_pair_right_side(self, sources, match_pair):
        _, right = sources
        support = right.get("R2")
        perturbed = perturbed_pair(match_pair, "right", support, ["description"])
        assert perturbed.right.value("description") == support.value("description")
        assert perturbed.left is match_pair.left

    def test_perturbed_pair_invalid_side(self, sources, match_pair):
        left, _ = sources
        with pytest.raises(ExplanationError):
            perturbed_pair(match_pair, "middle", left.get("L1"), ["name"])


class TestAugmentation:
    def test_value_token_drops_variants(self):
        variants = value_token_drops("a b c")
        assert "b c" in variants
        assert "a b" in variants
        assert "a b c" not in variants

    def test_value_token_drops_single_token(self):
        assert value_token_drops("single") == []

    def test_value_token_drops_respects_max_drop(self):
        variants = value_token_drops("a b c d e", max_drop=1)
        assert set(variants) == {"b c d e", "a b c d"}

    def test_record_variants_change_something(self):
        record = make_record("L0", "sony bravia theater", "black micro system", "10")
        variants = list(record_variants(record, max_variants=5, rng=random.Random(0)))
        assert variants
        for variant in variants:
            assert dict(variant.values) != dict(record.values)

    def test_record_variants_cap(self):
        record = make_record("L0", "sony bravia theater", "black micro system", "10")
        variants = list(record_variants(record, max_variants=3, rng=random.Random(0)))
        assert len(variants) <= 3

    def test_augment_records_produces_requested_count(self, sources):
        left, _ = sources
        augmented = augment_records(left.records, needed=12, rng=random.Random(0))
        assert len(augmented) == 12

    def test_augment_records_small_need(self, sources):
        left, _ = sources
        assert len(augment_records(left.records, needed=1, rng=random.Random(0))) == 1


class TestTriangleSearch:
    def test_selection_is_independent_of_source_record_order(
        self, similarity_model, sources, match_pair, non_match_pair
    ):
        """Shuffling the records inside a source must not change the triangles.

        Candidate ranking canonicalises by record id before the similarity
        sort / seeded shuffle, so triangle selection is a pure function of the
        record *set*, the pair and the seed — stable across runs even when
        equal similarity scores would otherwise leave the order to the
        source's iteration order.
        """
        left, right = sources
        reversed_left = DataSource(
            name=left.name, schema=left.schema, records=list(reversed(list(left.records)))
        )
        reversed_right = DataSource(
            name=right.name, schema=right.schema, records=list(reversed(list(right.records)))
        )
        for pair in (match_pair, non_match_pair):
            baseline = find_open_triangles(similarity_model, pair, left, right, count=6, seed=3)
            shuffled = find_open_triangles(
                similarity_model, pair, reversed_left, reversed_right, count=6, seed=3
            )
            assert [
                (triangle.side, triangle.support.record_id) for triangle in baseline.triangles
            ] == [(triangle.side, triangle.support.record_id) for triangle in shuffled.triangles]

    def test_supports_have_opposite_prediction(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        original = similarity_model.predict_match(match_pair)
        for triangle in result.triangles:
            support_prediction = similarity_model.predict_match(triangle.support_pair())
            assert support_prediction != original

    def test_supports_come_from_the_free_side(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        for triangle in result.triangles:
            if triangle.side == "left":
                assert triangle.support.source == "U" or triangle.augmented
            else:
                assert triangle.support.source == "V" or triangle.augmented

    def test_free_and_pivot_records(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=4, seed=0)
        for triangle in result.triangles:
            if triangle.side == "left":
                assert triangle.free_record is match_pair.left
                assert triangle.pivot_record is match_pair.right
            else:
                assert triangle.free_record is match_pair.right
                assert triangle.pivot_record is match_pair.left

    def test_non_match_prediction_finds_matching_supports(self, similarity_model, sources, non_match_pair):
        left, right = sources
        # non_match_pair is (L4, R4): garmin gps vs netgear router — predicted non-match.
        result = find_open_triangles(similarity_model, non_match_pair, left, right, count=4, seed=0)
        for triangle in result.triangles:
            assert similarity_model.predict_pair(triangle.support_pair()) > MATCH_THRESHOLD

    def test_invalid_count_rejected(self, similarity_model, sources, match_pair):
        left, right = sources
        with pytest.raises(TriangleError):
            find_open_triangles(similarity_model, match_pair, left, right, count=0)

    def test_empty_source_rejected(self, similarity_model, sources, match_pair):
        left, _ = sources
        empty = DataSource(name="empty", schema=LEFT_SCHEMA, records=[])
        with pytest.raises(TriangleError):
            find_open_triangles(similarity_model, match_pair, left, empty, count=4)

    def test_augmentation_fallback_fills_shortfall(self, similarity_model, sources, match_pair):
        left, right = sources
        natural = find_open_triangles(
            similarity_model, match_pair, left, right, count=40, seed=0, allow_augmentation=False
        )
        augmented = find_open_triangles(
            similarity_model, match_pair, left, right, count=40, seed=0, allow_augmentation=True
        )
        assert len(augmented.triangles) >= len(natural.triangles)

    def test_force_augmentation_uses_only_augmented_supports(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=0, force_augmentation=True
        )
        assert all(triangle.augmented for triangle in result.triangles)

    def test_excluded_supports_are_neither_used_nor_scored(self, similarity_model, sources, match_pair):
        """The compensation pass's exclusion set skips records entirely."""
        left, _ = sources
        original_match = similarity_model.predict_match(match_pair)
        baseline, baseline_scored, _ = _find_side_triangles(
            similarity_model, match_pair, "left", left, original_match,
            needed=10, rng=random.Random(0), max_candidates=None,
            allow_augmentation=False,
        )
        assert baseline  # the toy sources supply at least one left triangle
        excluded = frozenset(triangle.support.record_id for triangle in baseline)
        rescan, rescan_scored, _ = _find_side_triangles(
            similarity_model, match_pair, "left", left, original_match,
            needed=10, rng=random.Random(0), max_candidates=None,
            allow_augmentation=False, exclude_support_ids=excluded,
        )
        assert all(triangle.support.record_id not in excluded for triangle in rescan)
        assert rescan_scored <= baseline_scored - len(excluded)

    def test_mid_batch_tail_is_not_counted_as_scored(self, constant_model, sources, match_pair):
        """Once ``needed`` is reached, unread batch-tail candidates don't count."""
        left, _ = sources
        # ConstantModel scores 0.9 > threshold: every candidate qualifies when
        # the original prediction is a non-match, so the very first candidate
        # of the first batch completes the search.
        triangles, scored, _ = _find_side_triangles(
            constant_model, match_pair, "left", left, original_match=False,
            needed=1, rng=random.Random(0), max_candidates=None,
            allow_augmentation=False, batch_size=32,
        )
        assert len(triangles) == 1
        assert scored == 1

    def test_left_compensates_short_right_side_without_duplicates(self, similarity_model, match_pair):
        """A short right side is topped up from the left, never reusing supports."""
        left_records = [
            make_record(f"XL{i}", f"gadget {i}", f"unrelated widget {i} kit", str(10 + i))
            for i in range(8)
        ]
        left_records.append(match_pair.left)
        # Every right-side candidate is a near-duplicate of the pivot, so the
        # right search finds no opposite-prediction support at all.
        right_records = [match_pair.right] + [
            make_record(
                f"R{i}", match_pair.right.value("name"), match_pair.right.value("description"),
                match_pair.right.value("price"), source="V",
            )
            for i in range(1, 4)
        ]
        left = DataSource(name="wide-left", schema=LEFT_SCHEMA, records=left_records)
        right = DataSource(name="narrow-right", schema=LEFT_SCHEMA, records=right_records)
        result = find_open_triangles(
            similarity_model, match_pair, left, right, count=6, seed=0,
            allow_augmentation=False,
        )
        left_supports = [
            triangle.support.record_id for triangle in result.triangles if triangle.side == "left"
        ]
        assert len(left_supports) == len(set(left_supports))  # compensation never reuses
        assert len(result.triangles) > 3  # the left side topped up the short right side
        # Each left candidate is scored at most twice (first pass + top-up
        # rescan of the not-yet-used remainder) and used supports are skipped,
        # so the accounting stays below the naive full-rescan ceiling.
        assert result.candidates_scored <= 2 * (len(left_records) - 1) + len(right_records) - 1


class _OppositeToOriginalModel:
    """Original pair predicts non-match; every other pair predicts match.

    Stresses the augmentation path: with a starved right side every fabricated
    left candidate qualifies as a support, so the compensation pass exercises
    repeated ``augment_records`` calls over the same base records.
    """

    name = "opposite-to-original"

    def __init__(self, original_ids: tuple[str, str]) -> None:
        self.original_ids = original_ids

    def predict_proba(self, pairs) -> np.ndarray:
        return np.array(
            [
                0.2 if (pair.left.record_id, pair.right.record_id) == self.original_ids else 0.9
                for pair in pairs
            ],
            dtype=np.float64,
        )

    def predict_pair(self, pair) -> float:
        return float(self.predict_proba([pair])[0])

    def predict_match(self, pair) -> bool:
        return self.predict_pair(pair) > 0.5


class TestCompensationPass:
    """The top-up pass: side balance, exclusions, accounting, content dedupe."""

    @pytest.fixture()
    def starved_right_setup(self):
        """A pair whose right source holds only the pivot partner.

        The right side can supply no support at all (no candidates, no
        augmentation bases), so the left side must compensate for the whole
        ``count``; the tiny two-token attribute values keep the augmentation
        variant space small enough that re-fabrication collisions are certain.
        """
        free = make_record("L0", "sony tv", "big sony tv", "10")
        base_records = [
            make_record("L1", "alpha beta", "gamma delta", "11"),
            make_record("L2", "epsilon zeta", "eta theta", "12"),
        ]
        left = DataSource(name="starved-left", schema=LEFT_SCHEMA, records=[free] + base_records)
        pivot = make_record("R0", "sony tv set", "big sony tv set", "10", source="V")
        right = DataSource(name="starved-right", schema=LEFT_SCHEMA, records=[pivot])
        pair = RecordPair(free, pivot, True)
        return _OppositeToOriginalModel(("L0", "R0")), pair, left, right

    @pytest.mark.parametrize("seed", [0, 2, 4, 5])
    def test_compensation_never_duplicates_support_content(self, starved_right_setup, seed):
        """Regression: the top-up excluded used support *ids* only, and a
        re-run of ``augment_records`` over the same base records fabricates
        variants with identical content under fresh ids — every tested seed
        produced between one and four content-duplicate supports before the
        content-key dedupe."""
        model, pair, left, right = starved_right_setup
        result = find_open_triangles(
            model, pair, left, right, count=8, seed=seed, force_augmentation=True
        )
        keys = [(t.side, _support_content_key(t.support)) for t in result.triangles]
        assert len(keys) == len(set(keys))
        assert len(result.triangles) == 8  # dedupe fills the quota with fresh variants

    def test_compensation_comes_from_the_left_side(self, starved_right_setup):
        model, pair, left, right = starved_right_setup
        result = find_open_triangles(
            model, pair, left, right, count=8, seed=0, force_augmentation=True
        )
        assert len(result.by_side("left")) == 8
        assert result.by_side("right") == []
        assert result.augmented_count == 8
        assert result.natural_count == 0

    def test_even_count_splits_half_and_half(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        assert len(result.by_side("left")) == 3
        assert len(result.by_side("right")) == 3

    def test_odd_count_gives_right_side_the_remainder(self, similarity_model, sources, match_pair):
        """``count // 2`` go left; the right side is asked for the rest."""
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=7, seed=0)
        assert len(result.by_side("left")) == 3
        assert len(result.by_side("right")) == 4
        assert len(result.triangles) == 7

    def test_count_one_is_all_right_side(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=1, seed=0)
        assert len(result.triangles) == 1
        assert result.by_side("left") == []

    def test_compensation_honours_exclusions_and_accounting(self, starved_right_setup):
        """Scored/augmented counters cover the top-up pass, and the top-up
        never re-uses a first-pass support id."""
        model, pair, left, right = starved_right_setup
        result = find_open_triangles(
            model, pair, left, right, count=8, seed=1, force_augmentation=True
        )
        support_ids = [t.support.record_id for t in result.triangles]
        assert len(support_ids) == len(set(support_ids))
        assert result.augmented_count == sum(1 for t in result.triangles if t.augmented)
        # Every accepted support was scored, and the scored counter also saw
        # the rejected / duplicate candidates the passes consumed.
        assert result.candidates_scored >= len(result.triangles)


class TestCertaExplainer:
    @pytest.fixture()
    def explainer(self, similarity_model, sources):
        left, right = sources
        return CertaExplainer(similarity_model, left, right, num_triangles=8, seed=0)

    def test_saliency_covers_all_attributes(self, explainer, match_pair):
        explanation = explainer.explain(match_pair)
        assert set(explanation.scores) == {
            "left_name", "left_description", "left_price",
            "right_name", "right_description", "right_price",
        }

    def test_saliency_scores_are_probabilities(self, explainer, match_pair):
        explanation = explainer.explain(match_pair)
        assert all(0.0 <= score <= 1.0 for score in explanation.scores.values())

    def test_counterfactual_examples_flip(self, explainer, match_pair):
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.examples
        for example in explanation.examples:
            assert example.flipped

    def test_counterfactual_attribute_set_matches_examples(self, explainer, match_pair):
        explanation = explainer.explain_counterfactual(match_pair)
        for example in explanation.examples:
            assert example.changed_attributes == explanation.attribute_set

    def test_explain_full_bookkeeping(self, explainer, match_pair):
        explanation = explainer.explain_full(match_pair)
        assert explanation.triangles_used > 0
        assert explanation.flips > 0
        assert explanation.performed_predictions() > 0
        assert 0.0 <= explanation.best_sufficiency() <= 1.0
        assert 0.0 <= explanation.average_necessity() <= 1.0

    def test_non_match_explanation(self, explainer, labelled_pairs):
        non_match = labelled_pairs[4]  # (L0, R1): predicted non-match by similarity model
        explanation = explainer.explain_full(non_match)
        assert explanation.prediction < 0.5
        for example in explanation.counterfactual.examples:
            assert example.score > 0.5

    def test_monotone_and_exhaustive_agree_on_flip_counts_for_monotone_model(
        self, similarity_model, sources, match_pair
    ):
        left, right = sources
        monotone = CertaExplainer(similarity_model, left, right, num_triangles=6, monotone=True, seed=1)
        exhaustive = CertaExplainer(similarity_model, left, right, num_triangles=6, monotone=False, seed=1)
        first = monotone.explain_full(match_pair)
        second = exhaustive.explain_full(match_pair)
        assert first.flips == pytest.approx(second.flips, abs=first.flips * 0.25 + 1)
        assert second.saved_predictions() == 0
        assert first.saved_predictions() >= 0

    def test_strict_mode_raises_without_triangles(self, constant_model, sources, match_pair):
        left, right = sources
        explainer = CertaExplainer(constant_model, left, right, num_triangles=4, strict=True, seed=0)
        with pytest.raises(ExplanationError):
            explainer.explain_full(match_pair)

    def test_lenient_mode_returns_degenerate_explanation(self, constant_model, sources, match_pair):
        left, right = sources
        explainer = CertaExplainer(constant_model, left, right, num_triangles=4, strict=False, seed=0)
        explanation = explainer.explain_full(match_pair)
        assert explanation.triangles_used == 0
        assert all(score == 0.0 for score in explanation.saliency.scores.values())
        assert explanation.counterfactual.examples == []

    def test_more_triangles_never_reduces_triangles_used(self, explainer, similarity_model, sources, match_pair):
        left, right = sources
        small = CertaExplainer(similarity_model, left, right, num_triangles=4, seed=0)
        large = CertaExplainer(similarity_model, left, right, num_triangles=10, seed=0)
        assert large.explain_full(match_pair).triangles_used >= small.explain_full(match_pair).triangles_used


class TestTokenSaliency:
    def test_token_scores_align_with_tokens(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        saliency = token_saliency(similarity_model, match_pair, "left_description", result.triangles)
        assert len(saliency.tokens) == len(saliency.scores)
        assert saliency.tokens == match_pair.left.value("description").split()

    def test_scores_are_probabilities(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        saliency = token_saliency(similarity_model, match_pair, "left_name", result.triangles)
        assert all(0.0 <= score <= 1.0 for score in saliency.scores)

    def test_empty_attribute_yields_empty_saliency(self, similarity_model, sources, match_pair):
        left, right = sources
        masked = match_pair.with_left(match_pair.left.mask(["price"]))
        result = find_open_triangles(similarity_model, masked, left, right, count=4, seed=0)
        saliency = token_saliency(similarity_model, masked, "left_price", result.triangles)
        assert saliency.tokens == []
        assert saliency.top_tokens(3) == []

    def test_ranked_order(self, similarity_model, sources, match_pair):
        left, right = sources
        result = find_open_triangles(similarity_model, match_pair, left, right, count=6, seed=0)
        saliency = token_saliency(similarity_model, match_pair, "left_description", result.triangles)
        ranked_scores = [score for _, score in saliency.ranked()]
        assert ranked_scores == sorted(ranked_scores, reverse=True)
