"""Tests for repro.data.io: CSV / JSONL round-trips."""

from __future__ import annotations

import pytest

from repro.data.io import (
    load_dataset,
    read_pairs_csv,
    read_source_csv,
    records_from_jsonl,
    records_to_jsonl,
    save_dataset,
    write_pairs_csv,
    write_source_csv,
)
from repro.exceptions import DatasetError


class TestSourceCsv:
    def test_roundtrip_preserves_records(self, sources, tmp_path):
        left, _ = sources
        path = write_source_csv(left, tmp_path / "tableA.csv")
        loaded = read_source_csv(path, name="loaded", source_tag="U")
        assert len(loaded) == len(left)
        assert loaded.get("L0").value("name") == left.get("L0").value("name")

    def test_roundtrip_preserves_schema_order(self, sources, tmp_path):
        left, _ = sources
        path = write_source_csv(left, tmp_path / "tableA.csv")
        loaded = read_source_csv(path, name="loaded")
        assert loaded.schema.attributes == left.schema.attributes

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_source_csv(tmp_path / "nope.csv", name="x")

    def test_missing_id_column_raises(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("name,price\nsony,10\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_source_csv(bad, name="bad")


class TestPairsCsv:
    def test_roundtrip(self, sources, labelled_pairs, tmp_path):
        left, right = sources
        path = write_pairs_csv(labelled_pairs, tmp_path / "pairs.csv")
        loaded = read_pairs_csv(path, left, right)
        assert len(loaded) == len(labelled_pairs)
        assert loaded[0].label == labelled_pairs[0].label

    def test_unlabelled_pair_rejected(self, labelled_pairs, tmp_path):
        unlabelled = [labelled_pairs[0].with_label(None)]
        with pytest.raises(DatasetError):
            write_pairs_csv(unlabelled, tmp_path / "pairs.csv")

    def test_missing_columns_raise(self, sources, tmp_path):
        left, right = sources
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_pairs_csv(bad, left, right)


class TestDatasetDirectory:
    def test_save_and_load_roundtrip(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "TOY")
        loaded = load_dataset(directory)
        assert loaded.name == dataset.name
        assert len(loaded.train) == len(dataset.train)
        assert len(loaded.test) == len(dataset.test)
        assert loaded.left_schema.attributes == dataset.left_schema.attributes

    def test_expected_files_exist(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "TOY")
        for name in ("tableA.csv", "tableB.csv", "train.csv", "valid.csv", "test.csv", "metadata.json"):
            assert (directory / name).exists()

    def test_load_with_name_override(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "TOY")
        loaded = load_dataset(directory, name="RENAMED")
        assert loaded.name == "RENAMED"


class TestContentHashMetadata:
    def test_saved_metadata_records_both_hashes(self, dataset, tmp_path):
        import json

        save_dataset(dataset, tmp_path / "ds")
        metadata = json.loads((tmp_path / "ds" / "metadata.json").read_text(encoding="utf-8"))
        assert metadata["content_hashes"]["tableA"] == dataset.left.content_hash()
        assert metadata["content_hashes"]["tableB"] == dataset.right.content_hash()

    def test_roundtrip_verifies_cleanly(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.left.content_hash() == dataset.left.content_hash()
        assert loaded.right.content_hash() == dataset.right.content_hash()

    def test_tampered_table_b_raises(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "ds")
        table = tmp_path / "ds" / "tableB.csv"
        table.write_text(
            table.read_text(encoding="utf-8").replace("netgear", "notgear"), encoding="utf-8"
        )
        with pytest.raises(DatasetError, match="content hash"):
            load_dataset(tmp_path / "ds")

    def test_saved_metadata_records_the_hash_formula_version(self, dataset, tmp_path):
        import json

        from repro.data.table import CONTENT_HASH_VERSION

        save_dataset(dataset, tmp_path / "ds")
        metadata = json.loads((tmp_path / "ds" / "metadata.json").read_text(encoding="utf-8"))
        assert metadata["hash_version"] == CONTENT_HASH_VERSION

    def test_hash_formula_skew_skips_verification(self, dataset, tmp_path):
        """A dataset saved under another hash formula loads without a (false)
        corruption report — formula skew is not tampering."""
        import json

        save_dataset(dataset, tmp_path / "ds")
        metadata_path = tmp_path / "ds" / "metadata.json"
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        metadata["hash_version"] = 1  # the pre-additive sorted-digest formula
        metadata["content_hashes"] = {"tableA": "0" * 64, "tableB": "0" * 64}
        metadata_path.write_text(json.dumps(metadata), encoding="utf-8")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.left.content_hash() == dataset.left.content_hash()


class TestJsonl:
    def test_roundtrip(self, sources, tmp_path):
        left, _ = sources
        path = records_to_jsonl(left.records, tmp_path / "records.jsonl")
        loaded = records_from_jsonl(path, left.schema)
        assert len(loaded) == len(left)
        assert loaded[0].record_id == left.records[0].record_id
        assert dict(loaded[0].values) == dict(left.records[0].values)

    def test_missing_jsonl_raises(self, sources, tmp_path):
        left, _ = sources
        with pytest.raises(DatasetError):
            records_from_jsonl(tmp_path / "nope.jsonl", left.schema)
