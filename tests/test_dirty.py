"""Tests for repro.data.dirty: dirty-variant construction."""

from __future__ import annotations

import random

import pytest

from repro.data.dirty import dirtiness_rate, make_dirty_record, make_dirty_source

from tests.helpers import make_record, toy_sources


class TestMakeDirtyRecord:
    def test_zero_probability_is_identity(self):
        record = make_record("L0", "sony bravia", "black micro system", "10")
        assert make_dirty_record(record, random.Random(0), probability=0.0) is record

    def test_dirty_record_preserves_token_multiset(self):
        record = make_record("L0", "sony bravia", "black micro system", "10")
        dirty = make_dirty_record(record, random.Random(1), probability=1.0)
        original_tokens = sorted(record.as_text().split())
        dirty_tokens = sorted(dirty.as_text().split())
        assert original_tokens == dirty_tokens

    def test_dirty_record_empties_the_source_attribute(self):
        record = make_record("L0", "sony bravia", "black micro system", "10")
        dirty = make_dirty_record(record, random.Random(1), probability=1.0)
        emptied = [name for name in record.attribute_names()
                   if record.value(name) and not dirty.value(name)]
        assert len(emptied) == 1

    def test_record_id_is_preserved(self):
        record = make_record("L0", "sony bravia", "black micro", "10")
        dirty = make_dirty_record(record, random.Random(2), probability=1.0)
        assert dirty.record_id == record.record_id


class TestMakeDirtySource:
    def test_source_size_and_ids_preserved(self):
        left, _ = toy_sources()
        dirty = make_dirty_source(left, probability=1.0, seed=3)
        assert len(dirty) == len(left)
        assert dirty.ids() == left.ids()

    def test_high_probability_changes_most_records(self):
        left, _ = toy_sources()
        dirty = make_dirty_source(left, probability=1.0, seed=3)
        assert dirtiness_rate(left, dirty) >= 0.5

    def test_zero_probability_changes_nothing(self):
        left, _ = toy_sources()
        dirty = make_dirty_source(left, probability=0.0, seed=3)
        assert dirtiness_rate(left, dirty) == 0.0

    def test_dirtiness_rate_requires_aligned_sources(self):
        left, right = toy_sources()
        with pytest.raises(ValueError):
            dirtiness_rate(left, make_dirty_source(left.filter(lambda r: r.record_id != "L0")))
