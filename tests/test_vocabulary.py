"""Tests for repro.text.vocabulary."""

from __future__ import annotations

from repro.text.vocabulary import Vocabulary

from tests.helpers import make_record


class TestVocabulary:
    def test_build_assigns_unknown_to_zero(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony bravia")
        vocabulary.build()
        assert vocabulary.id_of("never-seen") == 0

    def test_known_tokens_have_positive_ids(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony bravia sony")
        vocabulary.build()
        assert vocabulary.id_of("sony") > 0
        assert vocabulary.id_of("bravia") > 0

    def test_most_frequent_token_has_smallest_id(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony sony sony bravia")
        vocabulary.build()
        assert vocabulary.id_of("sony") < vocabulary.id_of("bravia")

    def test_min_frequency_filters_rare_tokens(self):
        vocabulary = Vocabulary(min_frequency=2)
        vocabulary.add_text("sony sony bravia")
        vocabulary.build()
        assert "bravia" not in vocabulary
        assert "sony" in vocabulary

    def test_max_size_caps_vocabulary(self):
        vocabulary = Vocabulary(max_size=1)
        vocabulary.add_text("sony bravia theater")
        vocabulary.build()
        assert len(vocabulary) == 2  # <unk> plus one token

    def test_encode_maps_tokens(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony bravia")
        vocabulary.build()
        encoded = vocabulary.encode("sony unknown")
        assert encoded[0] > 0
        assert encoded[1] == 0

    def test_add_record_counts_all_attributes(self):
        vocabulary = Vocabulary()
        vocabulary.add_record(make_record("L0", "sony", "black micro", "10"))
        vocabulary.build()
        assert "black" in vocabulary
        assert "10" in vocabulary

    def test_frequency(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony sony bravia")
        assert vocabulary.frequency("sony") == 2
        assert vocabulary.frequency("missing") == 0

    def test_document_frequency_weights_are_positive(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony bravia")
        vocabulary.build()
        weights = vocabulary.document_frequency_weights(total_documents=10)
        assert weights["sony"] > 0

    def test_iteration_is_lazy_built(self):
        vocabulary = Vocabulary()
        vocabulary.add_text("sony")
        assert "sony" in list(vocabulary)
