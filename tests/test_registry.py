"""Tests for repro.data.registry: the 12-dataset benchmark registry."""

from __future__ import annotations

import pytest

from repro.data.registry import (
    BENCHMARK_CODES,
    benchmark_info,
    list_benchmarks,
    load_benchmark,
    table1_statistics,
)
from repro.exceptions import DatasetError

EXPECTED_WIDTHS = {
    "AB": 3, "AG": 3, "BA": 4, "DA": 4, "DS": 4, "FZ": 6, "IA": 8, "WA": 5,
    "DDA": 4, "DDS": 4, "DIA": 8, "DWA": 5,
}


class TestRegistryMetadata:
    def test_twelve_benchmarks_registered(self):
        assert len(BENCHMARK_CODES) == 12
        assert len(list_benchmarks()) == 12

    def test_codes_match_paper_table1(self):
        assert set(BENCHMARK_CODES) == set(EXPECTED_WIDTHS)

    @pytest.mark.parametrize("code", BENCHMARK_CODES)
    def test_schema_width_matches_paper(self, code):
        assert benchmark_info(code).attributes == EXPECTED_WIDTHS[code]

    def test_dirty_flags(self):
        assert benchmark_info("DDA").dirty is True
        assert benchmark_info("DA").dirty is False

    def test_unknown_code_rejected(self):
        with pytest.raises(DatasetError):
            benchmark_info("XYZ")

    def test_lookup_is_case_insensitive(self):
        assert benchmark_info("ab").code == "AB"

    def test_describe_mentions_code(self):
        assert "AB" in benchmark_info("AB").describe()


class TestLoadBenchmark:
    def test_load_returns_dataset_with_right_width(self):
        dataset = load_benchmark("FZ", scale=0.5)
        assert len(dataset.left_schema) == 6

    def test_load_is_memoised(self):
        first = load_benchmark("BA", scale=0.5)
        second = load_benchmark("BA", scale=0.5)
        assert first is second

    def test_scale_shrinks_sources(self):
        small = load_benchmark("AB", scale=0.25)
        large = load_benchmark("AB", scale=1.0)
        assert len(small.left) < len(large.left)

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_benchmark("AB", scale=0.0)

    def test_dirty_dataset_has_misplaced_values(self):
        dirty = load_benchmark("DDA", scale=0.5)
        clean = load_benchmark("DA", scale=0.5)
        # Dirty variants must exhibit missing values created by misplacement.
        dirty_missing = sum(
            1 for record in dirty.left for value in record.values.values() if not value
        )
        clean_missing = sum(
            1 for record in clean.left for value in record.values.values() if not value
        )
        assert dirty_missing > clean_missing


class TestTable1:
    def test_statistics_cover_all_datasets(self):
        rows = table1_statistics(scale=0.25)
        assert [row["dataset"] for row in rows] == list(BENCHMARK_CODES)
        for row in rows:
            assert row["matches"] > 0
            assert row["attributes"] == EXPECTED_WIDTHS[row["dataset"]]
