"""Tests for the saliency baselines: LIME, SHAP, Mojito, LandMark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.explain.base import pair_attribute_names
from repro.explain.landmark import LandmarkExplainer
from repro.explain.lime import LimeExplainer, exponential_kernel, weighted_ridge
from repro.explain.mojito import MojitoExplainer
from repro.explain.shap import ShapExplainer, enumerate_or_sample_coalitions, shapley_kernel_weight

import random


class TestLimeInternals:
    def test_exponential_kernel_decreases_with_distance(self):
        weights = exponential_kernel(np.array([0.0, 0.5, 1.0]), kernel_width=0.75)
        assert weights[0] > weights[1] > weights[2]

    def test_weighted_ridge_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((100, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 0.3
        coefficients, intercept = weighted_ridge(features, targets, np.ones(100), regularisation=1e-6)
        assert np.allclose(coefficients, [1.0, -2.0, 0.5], atol=1e-3)
        assert intercept == pytest.approx(0.3, abs=1e-3)

    def test_weighted_ridge_requires_matrix(self):
        with pytest.raises(ValueError):
            weighted_ridge(np.zeros(3), np.zeros(3), np.ones(3))


class TestLimeExplainer:
    def test_scores_cover_all_attributes(self, similarity_model, match_pair):
        explainer = LimeExplainer(similarity_model, n_samples=40, seed=0)
        explanation = explainer.explain(match_pair)
        assert set(explanation.scores) == set(pair_attribute_names(match_pair))

    def test_scores_are_non_negative(self, similarity_model, match_pair):
        explanation = LimeExplainer(similarity_model, n_samples=40, seed=0).explain(match_pair)
        assert all(score >= 0.0 for score in explanation.scores.values())

    def test_prediction_matches_model(self, similarity_model, match_pair):
        explanation = LimeExplainer(similarity_model, n_samples=20, seed=0).explain(match_pair)
        assert explanation.prediction == pytest.approx(similarity_model.predict_pair(match_pair))

    def test_informative_attributes_outrank_empty_ones(self, similarity_model, match_pair):
        # Blank the price on both sides: it carries no information for the
        # similarity model, so its saliency must not dominate.
        pair = match_pair.with_left(match_pair.left.mask(["price"]))
        pair = pair.with_right(pair.right.mask(["price"]))
        explanation = LimeExplainer(similarity_model, n_samples=80, seed=0).explain(pair)
        name_score = explanation.score_of("left_name") + explanation.score_of("left_description")
        price_score = explanation.score_of("left_price")
        assert name_score >= price_score

    def test_deterministic_given_seed(self, similarity_model, match_pair):
        first = LimeExplainer(similarity_model, n_samples=30, seed=5).explain(match_pair)
        second = LimeExplainer(similarity_model, n_samples=30, seed=5).explain(match_pair)
        assert first.scores == second.scores


class TestShapInternals:
    def test_kernel_weight_extremes_are_large(self):
        assert shapley_kernel_weight(5, 0) > shapley_kernel_weight(5, 2)
        assert shapley_kernel_weight(5, 5) > shapley_kernel_weight(5, 2)

    def test_kernel_weight_symmetry(self):
        assert shapley_kernel_weight(6, 2) == pytest.approx(shapley_kernel_weight(6, 4))

    def test_enumerate_small_feature_space(self):
        coalitions = enumerate_or_sample_coalitions(3, max_coalitions=100, rng=random.Random(0))
        assert len(coalitions) == 8

    def test_sample_large_feature_space(self):
        coalitions = enumerate_or_sample_coalitions(16, max_coalitions=50, rng=random.Random(0))
        assert len(coalitions) == 50
        assert tuple() in coalitions
        assert tuple(range(16)) in coalitions


class TestShapExplainer:
    def test_scores_cover_all_attributes(self, similarity_model, match_pair):
        explanation = ShapExplainer(similarity_model, max_coalitions=64, seed=0).explain(match_pair)
        assert set(explanation.scores) == set(pair_attribute_names(match_pair))

    def test_shapley_values_sum_to_score_minus_base(self, similarity_model, match_pair):
        explainer = ShapExplainer(similarity_model, max_coalitions=64, seed=0)
        attribution, original, base = explainer.shapley_values(match_pair)
        assert sum(attribution.values()) == pytest.approx(original - base, abs=0.05)

    def test_metadata_contains_base_value(self, similarity_model, match_pair):
        explanation = ShapExplainer(similarity_model, max_coalitions=64, seed=0).explain(match_pair)
        assert "base_value" in explanation.metadata


class TestMojito:
    def test_match_prediction_uses_drop(self, similarity_model, match_pair):
        explanation = MojitoExplainer(similarity_model, n_samples=30, seed=0).explain(match_pair)
        assert explanation.metadata["operator"] == 1.0

    def test_non_match_prediction_uses_copy(self, similarity_model, non_match_pair):
        explanation = MojitoExplainer(similarity_model, n_samples=30, seed=0).explain(non_match_pair)
        assert explanation.metadata["operator"] == 0.0

    def test_method_name(self, similarity_model, match_pair):
        explanation = MojitoExplainer(similarity_model, n_samples=20, seed=0).explain(match_pair)
        assert explanation.method == "mojito"


class TestLandmark:
    def test_scores_cover_both_sides(self, similarity_model, match_pair):
        explanation = LandmarkExplainer(similarity_model, n_samples=30, seed=0).explain(match_pair)
        left_scores = explanation.side_scores("left")
        right_scores = explanation.side_scores("right")
        assert set(left_scores) == {"name", "description", "price"}
        assert set(right_scores) == {"name", "description", "price"}

    def test_handles_non_match(self, similarity_model, non_match_pair):
        explanation = LandmarkExplainer(similarity_model, n_samples=30, seed=0).explain(non_match_pair)
        assert explanation.prediction < 0.5
        assert all(score >= 0.0 for score in explanation.scores.values())

    def test_explain_many(self, similarity_model, labelled_pairs):
        explainer = LandmarkExplainer(similarity_model, n_samples=20, seed=0)
        explanations = explainer.explain_many(labelled_pairs[:3])
        assert len(explanations) == 3
