"""Tests for repro.data.records: Schema, Record, RecordPair."""

from __future__ import annotations

import math

import pytest

from repro.data.records import (
    MISSING_VALUE,
    Record,
    RecordPair,
    Schema,
    normalize_value,
    pairs_from_ids,
)
from repro.exceptions import SchemaError

from tests.helpers import make_record


class TestNormalizeValue:
    def test_none_becomes_missing(self):
        assert normalize_value(None) == MISSING_VALUE

    def test_nan_becomes_missing(self):
        assert normalize_value(float("nan")) == MISSING_VALUE

    def test_nan_string_becomes_missing(self):
        assert normalize_value("NaN") == MISSING_VALUE

    def test_null_string_becomes_missing(self):
        assert normalize_value("null") == MISSING_VALUE

    def test_plain_string_is_stripped(self):
        assert normalize_value("  sony bravia ") == "sony bravia"

    def test_number_is_stringified(self):
        assert normalize_value(12.5) == "12.5"

    def test_zero_is_preserved(self):
        assert normalize_value(0) == "0"


class TestSchema:
    def test_from_names_preserves_order(self):
        schema = Schema.from_names(["b", "a", "c"])
        assert schema.attributes == ("b", "a", "c")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"))

    def test_len_and_contains(self):
        schema = Schema.from_names(["name", "price"])
        assert len(schema) == 2
        assert "name" in schema
        assert "missing" not in schema

    def test_index(self):
        schema = Schema.from_names(["name", "price"])
        assert schema.index("price") == 1

    def test_index_unknown_raises(self):
        schema = Schema.from_names(["name"])
        with pytest.raises(SchemaError):
            schema.index("price")

    def test_validate_subset_accepts_known(self):
        schema = Schema.from_names(["name", "price"])
        assert schema.validate_subset(["price"]) == ("price",)

    def test_validate_subset_rejects_unknown(self):
        schema = Schema.from_names(["name"])
        with pytest.raises(SchemaError):
            schema.validate_subset(["bogus"])

    def test_iteration_yields_names(self):
        schema = Schema.from_names(["x", "y"])
        assert list(schema) == ["x", "y"]


class TestRecord:
    def test_from_raw_fills_missing_attributes(self):
        schema = Schema.from_names(["name", "price"])
        record = Record.from_raw("r1", {"name": "sony"}, schema)
        assert record.value("price") == MISSING_VALUE

    def test_from_raw_rejects_unknown_attributes(self):
        schema = Schema.from_names(["name"])
        with pytest.raises(SchemaError):
            Record.from_raw("r1", {"bogus": "x"}, schema)

    def test_value_of_unknown_attribute_raises(self):
        record = make_record("L0", "a", "b", "1")
        with pytest.raises(SchemaError):
            record.value("bogus")

    def test_tokens_split_on_whitespace(self):
        record = make_record("L0", "sony bravia theater", "b", "1")
        assert record.tokens("name") == ["sony", "bravia", "theater"]

    def test_all_tokens_cover_all_attributes(self):
        record = make_record("L0", "sony", "black micro", "10")
        assert record.all_tokens() == ["sony", "black", "micro", "10"]

    def test_is_missing(self):
        schema = Schema.from_names(["name", "price"])
        record = Record.from_raw("r1", {"name": "sony", "price": None}, schema)
        assert record.is_missing("price")
        assert not record.is_missing("name")

    def test_replace_values_creates_new_record(self):
        record = make_record("L0", "sony", "desc", "10")
        updated = record.replace_values({"name": "canon"})
        assert updated.value("name") == "canon"
        assert record.value("name") == "sony"
        assert updated.record_id != record.record_id

    def test_replace_values_unknown_attribute_raises(self):
        record = make_record("L0", "sony", "desc", "10")
        with pytest.raises(SchemaError):
            record.replace_values({"bogus": "x"})

    def test_mask_blanks_attributes(self):
        record = make_record("L0", "sony", "desc", "10")
        masked = record.mask(["name", "price"])
        assert masked.value("name") == MISSING_VALUE
        assert masked.value("price") == MISSING_VALUE
        assert masked.value("description") == "desc"

    def test_as_text_skips_missing(self):
        schema = Schema.from_names(["name", "price"])
        record = Record.from_raw("r1", {"name": "sony", "price": None}, schema)
        assert record.as_text() == "sony"

    def test_as_dict_is_a_copy(self):
        record = make_record("L0", "sony", "desc", "10")
        as_dict = record.as_dict()
        as_dict["name"] = "changed"
        assert record.value("name") == "sony"

    def test_equality_by_content(self):
        first = make_record("L0", "sony", "desc", "10")
        second = make_record("L0", "sony", "desc", "10")
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_after_change(self):
        first = make_record("L0", "sony", "desc", "10")
        second = first.replace_values({"name": "canon"}, suffix="")
        assert first != second


class TestRecordPair:
    def test_pair_id(self, match_pair):
        assert match_pair.pair_id == ("L0", "R0")

    def test_with_left_preserves_label(self, match_pair):
        new_left = make_record("L9", "x", "y", "1")
        updated = match_pair.with_left(new_left)
        assert updated.left.record_id == "L9"
        assert updated.label == match_pair.label

    def test_with_right_preserves_label(self, match_pair):
        new_right = make_record("R9", "x", "y", "1", source="V")
        updated = match_pair.with_right(new_right)
        assert updated.right.record_id == "R9"
        assert updated.label == match_pair.label

    def test_with_label(self, match_pair):
        assert match_pair.with_label(False).label is False
        assert match_pair.with_label(None).label is None

    def test_attribute_names_are_prefixed(self, match_pair):
        names = match_pair.attribute_names()
        assert names[0].startswith("left_")
        assert names[-1].startswith("right_")
        assert len(names) == 6

    def test_as_flat_dict_roundtrip(self, match_pair):
        flat = match_pair.as_flat_dict()
        assert flat["left_name"] == match_pair.left.value("name")
        assert flat["right_price"] == match_pair.right.value("price")


class TestPairsFromIds:
    def test_builds_pairs(self, sources):
        left, right = sources
        left_index = {record.record_id: record for record in left}
        right_index = {record.record_id: record for record in right}
        pairs = pairs_from_ids(left_index, right_index, [("L0", "R0", True), ("L1", "R2", False)])
        assert len(pairs) == 2
        assert pairs[0].label is True
        assert pairs[1].label is False

    def test_unknown_left_id_raises(self, sources):
        left, right = sources
        left_index = {record.record_id: record for record in left}
        right_index = {record.record_id: record for record in right}
        with pytest.raises(SchemaError):
            pairs_from_ids(left_index, right_index, [("NOPE", "R0", True)])

    def test_unknown_right_id_raises(self, sources):
        left, right = sources
        left_index = {record.record_id: record for record in left}
        right_index = {record.record_id: record for record in right}
        with pytest.raises(SchemaError):
            pairs_from_ids(left_index, right_index, [("L0", "NOPE", True)])
