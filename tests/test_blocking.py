"""Tests for repro.data.blocking."""

from __future__ import annotations

import pytest

from repro.data.blocking import (
    DEFAULT_BLOCKING_TOKEN_LENGTH,
    BlockingResult,
    candidate_pairs,
    overlap_score,
    record_blocking_tokens,
    token_blocking,
    top_k_neighbours,
)
from repro.data.table import DataSource

from tests.helpers import LEFT_SCHEMA, make_record


class TestTokenBlocking:
    def test_matching_records_share_a_block(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert ("L0", "R0") in result.pairs  # both contain "sony" / "bravia"

    def test_reduction_ratio_in_unit_interval(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert 0.0 <= result.reduction_ratio <= 1.0

    def test_short_tokens_are_ignored(self, sources):
        left, right = sources
        result = token_blocking(left, right, min_token_length=50)
        assert result.pairs == ()

    def test_pairs_are_sorted_and_unique(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert list(result.pairs) == sorted(set(result.pairs))

    def test_reduction_ratio_is_one_for_empty_sources(self):
        """An empty cartesian product is total pruning, not 'no pruning'.

        Regression: the degenerate case used to report 0.0, making an empty
        candidate set look like blocking had removed nothing at all.
        """
        assert BlockingResult(pairs=(), left_count=0, right_count=0).reduction_ratio == 1.0
        assert BlockingResult(pairs=(), left_count=5, right_count=0).reduction_ratio == 1.0
        empty = DataSource(name="empty", schema=LEFT_SCHEMA, records=[])
        assert token_blocking(empty, empty).reduction_ratio == 1.0


class TestBlockingKeyConsistency:
    """Ranking and blocking must agree on what a blocking token is.

    Regression: ``record_blocking_tokens`` (used by ``overlap_score`` ranking)
    defaulted to tokens of length >= 2 while ``token_blocking`` required
    length >= 3, so records sharing only a two-character token — 'tv', 'lg',
    'hp' — ranked as similar yet never landed in a common block.
    """

    @pytest.fixture()
    def short_token_sources(self):
        left = DataSource(
            name="short-left", schema=LEFT_SCHEMA,
            records=[make_record("L0", "lg tv", "affordable flatscreen", "99")],
        )
        right = DataSource(
            name="short-right", schema=LEFT_SCHEMA,
            records=[make_record("R0", "tv stand", "wooden furniture", "49", source="V")],
        )
        return left, right

    def test_two_character_tokens_block_and_rank_consistently(self, short_token_sources):
        left, right = short_token_sources
        score = overlap_score(left.get("L0"), right.get("R0"))
        assert score > 0.0  # "tv" counts for the ranking...
        result = token_blocking(left, right)
        assert ("L0", "R0") in result.pairs  # ...so it must count for blocking too

    def test_one_default_threaded_through_ranking_and_blocking(self, sources):
        left, right = sources
        record = left.get("L0")
        default_tokens = record_blocking_tokens(record)
        explicit_tokens = record_blocking_tokens(record, DEFAULT_BLOCKING_TOKEN_LENGTH)
        assert default_tokens == explicit_tokens
        # A stricter notion threads through blocking, ranking and top-k alike.
        strict = 5
        blocking = token_blocking(left, right, min_token_length=strict, indexed=False)
        for left_id, right_id in blocking.pairs:
            assert overlap_score(left.get(left_id), right.get(right_id), strict) > 0.0


class TestOverlap:
    def test_identical_records_have_overlap_one(self, sources):
        left, _ = sources
        record = left.get("L0")
        assert overlap_score(record, record) == pytest.approx(1.0)

    def test_disjoint_records_have_overlap_zero(self, sources):
        left, right = sources
        assert overlap_score(left.get("L4"), right.get("R5")) == pytest.approx(0.0)

    def test_blocking_tokens_lowercase_and_filtered(self, sources):
        left, _ = sources
        tokens = record_blocking_tokens(left.get("L0"))
        assert "sony" in tokens
        assert all(len(token) >= 2 for token in tokens)


class TestTopKNeighbours:
    def test_most_similar_record_ranks_first(self, sources):
        left, right = sources
        neighbours = top_k_neighbours(left.get("L0"), right.records, k=3)
        assert neighbours[0].record_id == "R0"

    def test_exclusions_are_respected(self, sources):
        left, right = sources
        neighbours = top_k_neighbours(left.get("L0"), right.records, k=3, exclude_ids=["R0"])
        assert all(record.record_id != "R0" for record in neighbours)

    def test_k_limits_result_size(self, sources):
        left, right = sources
        assert len(top_k_neighbours(left.get("L0"), right.records, k=2)) == 2

    def test_k_none_ranks_every_candidate(self, sources):
        left, right = sources
        ranked = top_k_neighbours(left.get("L0"), right, k=None)
        assert len(ranked) == len(right)

    def test_datasource_and_iterable_agree(self, sources):
        """The indexed DataSource dispatch returns exactly the scan ranking."""
        left, right = sources
        for query in left:
            indexed = top_k_neighbours(query, right, k=4)
            scanned = top_k_neighbours(query, list(right), k=4)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]

    def test_ordering_shared_with_triangle_ranking(self, sources, match_pair):
        """Triangle search and top_k_neighbours use one candidate ordering.

        Regression: ``top_k_neighbours`` had drifted out of use and its
        exclude/ordering semantics were no longer checked against
        ``_ranked_candidates``; the triangle search now *is* a
        ``top_k_neighbours`` call, pinned here.
        """
        import random

        from repro.certa.triangles import _ranked_candidates

        left, _ = sources
        pivot, free = match_pair.right, match_pair.left
        for indexed in (True, False):
            ranked = _ranked_candidates(
                left, pivot, free, want_match=True, rng=random.Random(0),
                max_candidates=4, indexed=indexed,
            )
            neighbours = top_k_neighbours(
                pivot, left, k=4, exclude_ids=(free.record_id,), indexed=indexed
            )
            assert [r.record_id for r in ranked] == [r.record_id for r in neighbours]


class TestCandidatePairs:
    def test_all_matches_are_kept_as_positives(self, sources):
        left, right = sources
        matches = [("L0", "R0"), ("L1", "R1")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=2)
        positives = {pair.pair_id for pair in pairs if pair.label}
        assert positives == set(matches)

    def test_negatives_are_not_matches(self, sources):
        left, right = sources
        matches = [("L0", "R0"), ("L1", "R1")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=2)
        for pair in pairs:
            if not pair.label:
                assert pair.pair_id not in set(matches)

    def test_negative_budget_is_respected(self, sources):
        left, right = sources
        matches = [("L0", "R0")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=3)
        negatives = [pair for pair in pairs if not pair.label]
        assert len(negatives) <= 3
