"""Tests for repro.data.blocking."""

from __future__ import annotations

import pytest

from repro.data.blocking import (
    candidate_pairs,
    overlap_score,
    record_blocking_tokens,
    token_blocking,
    top_k_neighbours,
)


class TestTokenBlocking:
    def test_matching_records_share_a_block(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert ("L0", "R0") in result.pairs  # both contain "sony" / "bravia"

    def test_reduction_ratio_in_unit_interval(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert 0.0 <= result.reduction_ratio <= 1.0

    def test_short_tokens_are_ignored(self, sources):
        left, right = sources
        result = token_blocking(left, right, min_token_length=50)
        assert result.pairs == ()

    def test_pairs_are_sorted_and_unique(self, sources):
        left, right = sources
        result = token_blocking(left, right)
        assert list(result.pairs) == sorted(set(result.pairs))


class TestOverlap:
    def test_identical_records_have_overlap_one(self, sources):
        left, _ = sources
        record = left.get("L0")
        assert overlap_score(record, record) == pytest.approx(1.0)

    def test_disjoint_records_have_overlap_zero(self, sources):
        left, right = sources
        assert overlap_score(left.get("L4"), right.get("R5")) == pytest.approx(0.0)

    def test_blocking_tokens_lowercase_and_filtered(self, sources):
        left, _ = sources
        tokens = record_blocking_tokens(left.get("L0"))
        assert "sony" in tokens
        assert all(len(token) >= 2 for token in tokens)


class TestTopKNeighbours:
    def test_most_similar_record_ranks_first(self, sources):
        left, right = sources
        neighbours = top_k_neighbours(left.get("L0"), right.records, k=3)
        assert neighbours[0].record_id == "R0"

    def test_exclusions_are_respected(self, sources):
        left, right = sources
        neighbours = top_k_neighbours(left.get("L0"), right.records, k=3, exclude_ids=["R0"])
        assert all(record.record_id != "R0" for record in neighbours)

    def test_k_limits_result_size(self, sources):
        left, right = sources
        assert len(top_k_neighbours(left.get("L0"), right.records, k=2)) == 2


class TestCandidatePairs:
    def test_all_matches_are_kept_as_positives(self, sources):
        left, right = sources
        matches = [("L0", "R0"), ("L1", "R1")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=2)
        positives = {pair.pair_id for pair in pairs if pair.label}
        assert positives == set(matches)

    def test_negatives_are_not_matches(self, sources):
        left, right = sources
        matches = [("L0", "R0"), ("L1", "R1")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=2)
        for pair in pairs:
            if not pair.label:
                assert pair.pair_id not in set(matches)

    def test_negative_budget_is_respected(self, sources):
        left, right = sources
        matches = [("L0", "R0")]
        pairs = candidate_pairs(left, right, matches, negatives_per_match=3)
        negatives = [pair for pair in pairs if not pair.label]
        assert len(negatives) <= 3
