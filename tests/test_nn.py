"""Tests for the numpy neural substrate: layers, losses, optimisers, MLP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models.nn.layers import Dense, Dropout, ReLU, Sigmoid, Tanh, sigmoid
from repro.models.nn.losses import binary_cross_entropy, binary_cross_entropy_gradient, mean_squared_error
from repro.models.nn.network import MLPClassifier
from repro.models.nn.optim import SGD, Adam


class TestLayers:
    def test_dense_output_shape(self):
        layer = Dense(4, 3, seed=0)
        outputs = layer.forward(np.ones((5, 4)))
        assert outputs.shape == (5, 3)

    def test_dense_backward_requires_training_forward(self):
        layer = Dense(2, 2)
        layer.forward(np.ones((1, 2)), training=False)
        with pytest.raises(ModelError):
            layer.backward(np.ones((1, 2)))

    def test_dense_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=1)
        inputs = rng.standard_normal((4, 3))
        grad_output = rng.standard_normal((4, 2))

        layer.forward(inputs, training=True)
        layer.backward(grad_output)
        analytic = layer.gradients()[0].copy()

        epsilon = 1e-6
        numeric = np.zeros_like(layer.weight)
        for i in range(layer.weight.shape[0]):
            for j in range(layer.weight.shape[1]):
                layer.weight[i, j] += epsilon
                plus = np.sum(layer.forward(inputs) * grad_output)
                layer.weight[i, j] -= 2 * epsilon
                minus = np.sum(layer.forward(inputs) * grad_output)
                layer.weight[i, j] += epsilon
                numeric[i, j] = (plus - minus) / (2 * epsilon)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_relu_zeroes_negatives(self):
        layer = ReLU()
        outputs = layer.forward(np.array([[-1.0, 2.0]]))
        assert outputs.tolist() == [[0.0, 2.0]]

    def test_relu_backward_masks_gradient(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grads = layer.backward(np.array([[5.0, 5.0]]))
        assert grads.tolist() == [[0.0, 5.0]]

    def test_tanh_range(self):
        layer = Tanh()
        outputs = layer.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert outputs[0, 0] == pytest.approx(-1.0)
        assert outputs[0, 1] == pytest.approx(0.0)
        assert outputs[0, 2] == pytest.approx(1.0)

    def test_sigmoid_function_stability(self):
        values = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(0.5)
        assert values[2] == pytest.approx(1.0)

    def test_sigmoid_layer_backward(self):
        layer = Sigmoid()
        layer.forward(np.array([[0.0]]), training=True)
        grads = layer.backward(np.array([[1.0]]))
        assert grads[0, 0] == pytest.approx(0.25)

    def test_dropout_inactive_at_inference(self):
        layer = Dropout(rate=0.5, seed=0)
        inputs = np.ones((3, 4))
        assert np.allclose(layer.forward(inputs, training=False), inputs)

    def test_dropout_zeroes_some_units_in_training(self):
        layer = Dropout(rate=0.5, seed=0)
        outputs = layer.forward(np.ones((10, 10)), training=True)
        assert np.sum(outputs == 0.0) > 0

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)


class TestLosses:
    def test_bce_perfect_prediction_is_small(self):
        loss = binary_cross_entropy(np.array([0.999, 0.001]), np.array([1.0, 0.0]))
        assert loss < 0.01

    def test_bce_wrong_prediction_is_large(self):
        loss = binary_cross_entropy(np.array([0.01]), np.array([1.0]))
        assert loss > 2.0

    def test_bce_positive_weight_increases_positive_loss(self):
        unweighted = binary_cross_entropy(np.array([0.3]), np.array([1.0]), positive_weight=1.0)
        weighted = binary_cross_entropy(np.array([0.3]), np.array([1.0]), positive_weight=3.0)
        assert weighted == pytest.approx(3 * unweighted)

    def test_bce_gradient_sign(self):
        grad = binary_cross_entropy_gradient(np.array([0.3]), np.array([1.0]))
        assert grad[0] < 0  # prediction should increase

    def test_mse(self):
        assert mean_squared_error(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == pytest.approx(2.0)


class TestOptimisers:
    def test_sgd_moves_against_gradient(self):
        parameter = np.array([1.0])
        SGD(learning_rate=0.1).step([parameter], [np.array([1.0])])
        assert parameter[0] == pytest.approx(0.9)

    def test_sgd_momentum_accumulates(self):
        parameter = np.array([0.0])
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        optimizer.step([parameter], [np.array([1.0])])
        first_step = parameter[0]
        optimizer.step([parameter], [np.array([1.0])])
        assert abs(parameter[0] - first_step) > abs(first_step)

    def test_adam_moves_against_gradient(self):
        parameter = np.array([1.0])
        Adam(learning_rate=0.1).step([parameter], [np.array([1.0])])
        assert parameter[0] < 1.0


class TestMLPClassifier:
    def _xor_like_data(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(-1, 1, size=(200, 2))
        labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(float)
        return features, labels

    def test_output_in_unit_interval(self):
        model = MLPClassifier(input_dim=3, hidden_dims=(4,), seed=0)
        outputs = model.predict_proba(np.random.default_rng(0).standard_normal((10, 3)))
        assert np.all((outputs >= 0) & (outputs <= 1))

    def test_training_reduces_loss(self):
        features, labels = self._xor_like_data()
        model = MLPClassifier(input_dim=2, hidden_dims=(16, 8), learning_rate=0.02, seed=0)
        history = model.fit(features, labels, epochs=40, patience=None)
        assert history.losses[-1] < history.losses[0]

    def test_learns_linearly_separable_data(self):
        rng = np.random.default_rng(1)
        features = rng.standard_normal((200, 2))
        labels = (features[:, 0] + features[:, 1] > 0).astype(float)
        model = MLPClassifier(input_dim=2, hidden_dims=(8,), learning_rate=0.05, seed=0)
        model.fit(features, labels, epochs=40)
        accuracy = np.mean((model.predict_proba(features) > 0.5) == (labels > 0.5))
        assert accuracy > 0.9

    def test_fit_validates_shapes(self):
        model = MLPClassifier(input_dim=2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(4))

    def test_early_stopping_limits_epochs(self):
        rng = np.random.default_rng(2)
        features = rng.standard_normal((50, 2))
        labels = (features[:, 0] > 0).astype(float)
        model = MLPClassifier(input_dim=2, hidden_dims=(4,), learning_rate=0.05, seed=0)
        history = model.fit(features, labels, epochs=200, patience=5)
        assert history.epochs < 200

    def test_single_sample_prediction(self):
        model = MLPClassifier(input_dim=4, hidden_dims=(4,), seed=0)
        assert model.predict_proba(np.zeros(4)).shape == (1,)

    def test_get_set_weights_roundtrip(self):
        model = MLPClassifier(input_dim=3, hidden_dims=(5,), seed=0)
        other = MLPClassifier(input_dim=3, hidden_dims=(5,), seed=99)
        other.set_weights(model.get_weights())
        inputs = np.random.default_rng(3).standard_normal((6, 3))
        assert np.allclose(model.predict_proba(inputs), other.predict_proba(inputs))

    def test_set_weights_validates_count(self):
        model = MLPClassifier(input_dim=3, hidden_dims=(5,), seed=0)
        with pytest.raises(ValueError):
            model.set_weights([np.zeros((3, 5))])

    def test_set_weights_validates_shapes(self):
        model = MLPClassifier(input_dim=3, hidden_dims=(5,), seed=0)
        weights = model.get_weights()
        weights[0] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.set_weights(weights)
