"""Tests for repro.models.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.metrics import (
    accuracy_score,
    classification_report,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)


class TestConfusion:
    def test_counts(self):
        truth = np.array([True, True, False, False])
        predictions = np.array([True, False, True, False])
        assert confusion_counts(truth, predictions) == (1, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([True]), np.array([True, False]))


class TestScores:
    TRUTH = np.array([True, True, True, False, False])
    PREDICTIONS = np.array([True, True, False, True, False])

    def test_precision(self):
        assert precision_score(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)

    def test_f1(self):
        assert f1_score(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)

    def test_accuracy(self):
        assert accuracy_score(self.TRUTH, self.PREDICTIONS) == pytest.approx(3 / 5)

    def test_perfect_prediction(self):
        assert f1_score(self.TRUTH, self.TRUTH) == 1.0

    def test_no_predicted_positives(self):
        predictions = np.zeros(5, dtype=bool)
        assert precision_score(self.TRUTH, predictions) == 0.0
        assert f1_score(self.TRUTH, predictions) == 0.0

    def test_no_actual_positives(self):
        truth = np.zeros(4, dtype=bool)
        predictions = np.array([True, False, False, False])
        assert recall_score(truth, predictions) == 0.0

    def test_report_contains_all_metrics(self):
        report = classification_report(self.TRUTH, self.PREDICTIONS)
        assert set(report) == {"precision", "recall", "f1", "accuracy"}
