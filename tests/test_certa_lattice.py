"""Tests for repro.certa.lattice, including the paper's worked example."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certa.lattice import (
    AttributeLattice,
    explore_lattice,
    monotonicity_violations,
)
from repro.exceptions import LatticeError


class TestLatticeConstruction:
    def test_node_count_is_powerset_minus_empty(self):
        lattice = AttributeLattice(["N", "D", "P"])
        assert len(lattice) == 7

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(LatticeError):
            AttributeLattice([])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(LatticeError):
            AttributeLattice(["a", "a"])

    def test_levels_are_ordered_by_size(self):
        lattice = AttributeLattice(["a", "b", "c"])
        levels = lattice.levels()
        assert [len(level) for level in levels] == [3, 3, 1]

    def test_supersets_and_subsets(self):
        lattice = AttributeLattice(["a", "b", "c"])
        supersets = {frozenset(node.attributes) for node in lattice.supersets(["a"])}
        assert supersets == {frozenset("ab"), frozenset("ac"), frozenset("abc")}
        subsets = {frozenset(node.attributes) for node in lattice.subsets(["a", "b"])}
        assert subsets == {frozenset("a"), frozenset("b")}

    def test_node_lookup_unknown_set(self):
        lattice = AttributeLattice(["a"])
        with pytest.raises(LatticeError):
            lattice.node(["b"])

    def test_contains(self):
        lattice = AttributeLattice(["a", "b"])
        assert ["a", "b"] in lattice
        assert ["c"] not in lattice


class TestTaggingAndPropagation:
    def test_propagate_flip_marks_supersets_as_inferred(self):
        lattice = AttributeLattice(["a", "b", "c"])
        lattice.tag(["a"], True)
        inferred = lattice.propagate_flip(["a"])
        assert inferred == 3
        assert lattice.node(["a", "b"]).flip is True
        assert lattice.node(["a", "b"]).evaluated is False

    def test_propagate_does_not_overwrite_tested_nodes(self):
        lattice = AttributeLattice(["a", "b"])
        lattice.tag(["a", "b"], False, evaluated=True)
        lattice.tag(["a"], True)
        lattice.propagate_flip(["a"])
        assert lattice.node(["a", "b"]).flip is False

    def test_minimal_flipping_antichain(self):
        lattice = AttributeLattice(["N", "D", "P"])
        for subset in (["N"], ["D"], ["N", "D"], ["N", "P"], ["D", "P"], ["N", "D", "P"]):
            lattice.tag(subset, True)
        lattice.tag(["P"], False)
        antichain = lattice.minimal_flipping_antichain()
        assert antichain == [frozenset({"D"}), frozenset({"N"})]

    def test_candidate_sets_exclude_full_set(self):
        lattice = AttributeLattice(["a", "b"])
        lattice.tag(["a"], True)
        lattice.tag(["a", "b"], True)
        assert frozenset({"a", "b"}) not in lattice.candidate_sets()
        assert frozenset({"a"}) in lattice.candidate_sets()


class TestExploration:
    def test_monotone_exploration_saves_predictions(self):
        lattice = AttributeLattice(["a", "b", "c", "d"])
        stats = explore_lattice(lattice, lambda attrs: "a" in attrs, monotone=True)
        assert stats.performed_predictions < stats.expected_predictions
        assert stats.saved_predictions > 0

    def test_exhaustive_exploration_tags_every_node(self):
        lattice = AttributeLattice(["a", "b", "c"])
        stats = explore_lattice(lattice, lambda attrs: len(attrs) >= 2, monotone=False)
        assert all(node.tagged for node in lattice.nodes())
        # Every node except the (never-evaluated) full set is tested explicitly.
        assert stats.performed_predictions == stats.expected_predictions
        assert lattice.node(["a", "b", "c"]).evaluated is False
        assert lattice.node(["a", "b", "c"]).flip is True

    def test_monotone_and_exhaustive_agree_for_monotone_functions(self):
        def truly_monotone(attrs):
            return "a" in attrs or len(attrs) >= 3

        monotone_lattice = AttributeLattice(["a", "b", "c", "d"])
        explore_lattice(monotone_lattice, truly_monotone, monotone=True)
        exhaustive_lattice = AttributeLattice(["a", "b", "c", "d"])
        explore_lattice(exhaustive_lattice, truly_monotone, monotone=False)
        for node in monotone_lattice.nodes():
            assert node.flip == exhaustive_lattice.node(node.attributes).flip

    def test_monotonicity_violations_detects_non_monotone_function(self):
        # Flips on {a} but NOT on {a, b}: violates monotonicity.
        def non_monotone(attrs):
            return attrs == frozenset({"a"})

        _, __, saved, wrong = monotonicity_violations(["a", "b", "c"], non_monotone)
        assert saved > 0
        assert wrong > 0

    def test_monotonicity_violations_zero_for_monotone_function(self):
        _, __, saved, wrong = monotonicity_violations(["a", "b", "c"], lambda attrs: "a" in attrs)
        assert wrong == 0
        assert saved > 0

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_nothing_flips_means_every_node_is_evaluated(self, width):
        attributes = [f"a{i}" for i in range(width)]
        lattice = AttributeLattice(attributes)
        stats = explore_lattice(lattice, lambda attrs: False, monotone=True)
        assert stats.performed_predictions == stats.expected_predictions
        assert lattice.flipped_nodes() == []

    @given(st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=2))
    @settings(max_examples=20, deadline=None)
    def test_flip_threshold_functions_yield_consistent_antichain(self, trigger):
        # gamma(A) = trigger <= A  is monotone by construction.
        lattice = AttributeLattice(["a", "b", "c", "d"])
        explore_lattice(lattice, lambda attrs: trigger <= attrs, monotone=True)
        antichain = lattice.minimal_flipping_antichain()
        assert antichain == [frozenset(trigger)]


class TestPaperWorkedExample:
    """Reproduce the counters of the Section 4 worked example (Figure 9)."""

    LATTICE_TAGS = {
        # per support record: attribute sets that flip
        "w1": [{"N"}, {"D"}, {"N", "D"}, {"N", "P"}, {"D", "P"}, {"N", "D", "P"}],
        "w2": [{"N"}, {"N", "D"}, {"N", "P"}, {"D", "P"}, {"N", "D", "P"}],
        "w3": [{"N"}, {"N", "D"}, {"N", "P"}, {"N", "D", "P"}],
        "w4": [{"N", "D"}, {"N", "P"}, {"D", "P"}, {"N", "D", "P"}],
    }

    def _tagged_lattices(self):
        lattices = {}
        for name, flips in self.LATTICE_TAGS.items():
            lattice = AttributeLattice(["N", "D", "P"])
            flip_sets = [frozenset(f) for f in flips]
            explore_lattice(lattice, lambda attrs, fs=flip_sets: attrs in fs, monotone=False)
            lattices[name] = lattice
        return lattices

    def test_total_flips_is_19(self):
        lattices = self._tagged_lattices()
        total = sum(len(lattice.flipped_nodes()) for lattice in lattices.values())
        assert total == 19

    def test_necessity_counts_match_paper(self):
        lattices = self._tagged_lattices()
        counts = {"N": 0, "D": 0, "P": 0}
        for lattice in lattices.values():
            for node in lattice.flipped_nodes():
                for attribute in node.attributes:
                    counts[attribute] += 1
        assert counts["N"] == 15
        assert counts["P"] == 11
        # The paper reports 13 for D; direct enumeration of Figure 9 gives 12.
        assert counts["D"] in (12, 13)

    def test_sufficiency_of_singletons(self):
        lattices = self._tagged_lattices()
        chi_n = sum(1 for lattice in lattices.values() if lattice.node(["N"]).flip) / 4
        chi_d = sum(1 for lattice in lattices.values() if lattice.node(["D"]).flip) / 4
        chi_p = sum(1 for lattice in lattices.values() if lattice.node(["P"]).flip) / 4
        assert chi_n == pytest.approx(3 / 4)
        assert chi_d == pytest.approx(1 / 4)
        assert chi_p == 0.0

    def test_sufficiency_of_pairs_and_golden_set(self):
        lattices = self._tagged_lattices()

        def chi(attrs):
            return sum(1 for lattice in lattices.values() if lattice.node(attrs).flip) / 4

        assert chi(["N", "D"]) == 1.0
        assert chi(["N", "P"]) == 1.0
        assert chi(["D", "P"]) == pytest.approx(3 / 4)
        # The golden set must be one of the size-2 sets with chi = 1 (not the full set).
        candidates = {frozenset({"N", "D"}), frozenset({"N", "P"})}
        best = max(
            (frozenset(a) for a in (["N"], ["D"], ["P"], ["N", "D"], ["N", "P"], ["D", "P"])),
            key=lambda attrs: (chi(attrs), -len(attrs)),
        )
        assert best in candidates
