"""Differential fuzz suite for the mutable DataSource lifecycle.

Every mutation path of :class:`repro.data.table.DataSource` — ``add``,
``update``, ``remove`` — must leave the indexed candidate-generation stack
(:mod:`repro.data.indexing`) *byte-equal* to the full-scan golden reference.
This suite applies seeded random mutation sequences and, **after every single
mutation**, compares

* top-k similarity ranking (indexed vs scan, bounded and unbounded k),
* token blocking (indexed vs scan), and
* open-triangle search (indexed vs scan, including augmentation bookkeeping)

so any staleness window, interning leak or ordering divergence introduced by
a mutation is caught at the exact step that opened it.  Since index
maintenance went incremental, each step *additionally* asserts the
incrementally maintained index is structurally byte-equal
(:meth:`~repro.data.indexing.SourceTokenIndex.canonical_state`) to an index
rebuilt from scratch over the same records — catching posting-list skew that
a lucky query order might not surface — and a truncation variant re-runs the
sequences with a delta log too short to replay, exercising the
rebuild-fallback path against the same oracles.  A persistence variant
replays mutations against a source wired to an on-disk artifact store, so
save → mutate → warm-load cycles are fuzzed the same way.
"""

from __future__ import annotations

import random

import pytest

from repro.data.artifacts import ArtifactStore
from repro.data.blocking import token_blocking, top_k_neighbours
from repro.data.indexing import (
    SourceTokenIndex,
    changed_pairs,
    get_source_index,
    interned_blocking_tokens,
)
from repro.data.records import Record, RecordPair
from repro.data.table import DataSource
from repro.certa.triangles import find_open_triangles

from tests.helpers import LEFT_SCHEMA, SimilarityModel, make_record, toy_sources

#: Number of seeded mutation sequences the suite replays (acceptance: >= 200).
SEQUENCE_COUNT = 200

#: Mutations applied per sequence.
SEQUENCE_LENGTH = 6

_WORDS = (
    "sony", "bravia", "canon", "powershot", "bose", "soundlink", "garmin",
    "philips", "dvd", "camera", "speaker", "portable", "wireless", "router",
    "printer", "photo", "audio", "system", "theater", "digital", "compact",
    "bluetooth", "navigator", "progressive", "micro", "dual", "band",
)


def _random_record(rng: random.Random, record_id: str) -> Record:
    name = " ".join(rng.sample(_WORDS, rng.randint(2, 4)))
    description = " ".join(rng.sample(_WORDS, rng.randint(3, 6)))
    price = f"{rng.randint(10, 999)}.{rng.randint(0, 99):02d}"
    return make_record(record_id, name, description, price)


def _apply_random_mutation(rng: random.Random, source: DataSource, counter: list[int]) -> str:
    """One random lifecycle mutation through the public API; returns its name."""
    operations = ["add", "update"]
    if len(source) > 3:  # keep enough records for triangle search to stay meaningful
        operations.append("remove")
    operation = rng.choice(operations)
    if operation == "add":
        counter[0] += 1
        source.add(_random_record(rng, f"F{counter[0]}"))
    elif operation == "update":
        victim = rng.choice(source.ids())
        source.update(_random_record(rng, victim))
    else:
        source.remove(rng.choice(source.ids()))
    return operation


def _assert_ranking_equivalence(source: DataSource, queries) -> None:
    for query in queries:
        for k in (3, None):
            indexed = top_k_neighbours(query, source, k=k, indexed=True)
            scanned = top_k_neighbours(query, list(source), k=k, indexed=False)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]
            # The compiled tiered ranker must track every mutation too: forcing
            # tiered=True after the mutation exercises dirty-shard recompiles
            # and must stay byte-equal to the dict walk and the scan.
            tiered = top_k_neighbours(query, source, k=k, indexed=True, tiered=True)
            assert [r.record_id for r in tiered] == [r.record_id for r in scanned]


def _assert_blocking_equivalence(left: DataSource, right: DataSource) -> None:
    indexed = token_blocking(left, right, indexed=True)
    scanned = token_blocking(left, right, indexed=False)
    assert indexed.pairs == scanned.pairs
    assert indexed.reduction_ratio == scanned.reduction_ratio


def _triangle_fingerprint(result):
    return (
        [(t.side, t.support.record_id, tuple(sorted(t.support.values.items())), t.augmented)
         for t in result.triangles],
        result.requested,
        result.candidates_scored,
        result.augmented_count,
    )


def _assert_triangle_equivalence(model, pair, left, right, seed: int) -> None:
    indexed = find_open_triangles(model, pair, left, right, count=4, seed=seed, indexed=True)
    scanned = find_open_triangles(model, pair, left, right, count=4, seed=seed, indexed=False)
    assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)


def _assert_structural_equivalence(source: DataSource) -> None:
    """The maintained index is byte-equal to a rebuild over the same records.

    :meth:`SourceTokenIndex.canonical_state` erases slot-assignment history,
    so any divergence here is a genuine posting/token/id skew introduced by
    delta application (or the fallback), not an implementation detail.
    """
    maintained = get_source_index(source, 2)
    maintained.ensure_fresh()
    rebuilt = SourceTokenIndex(source, 2)
    rebuilt.ensure_fresh()
    assert maintained.canonical_state() == rebuilt.canonical_state()


def _run_sequence(
    seed: int,
    store: ArtifactStore | None = None,
    delta_log_limit: int | None = None,
) -> tuple[DataSource, DataSource]:
    """One seeded lifecycle fuzz sequence with per-mutation equivalence checks."""
    rng = random.Random(seed)
    left, right = toy_sources()
    if store is not None:
        left.artifact_store = store
        right.artifact_store = store
    if delta_log_limit is not None:
        left.delta_log_limit = delta_log_limit
        right.delta_log_limit = delta_log_limit
    model = SimilarityModel()
    counter = [0]
    for step in range(SEQUENCE_LENGTH):
        target, other = (left, right) if rng.random() < 0.5 else (right, left)
        _apply_random_mutation(rng, target, counter)
        queries = rng.sample(list(other), min(2, len(other)))
        _assert_ranking_equivalence(target, queries)
        _assert_blocking_equivalence(left, right)
        _assert_structural_equivalence(target)
        pair = RecordPair(rng.choice(list(left)), rng.choice(list(right)), None)
        _assert_triangle_equivalence(model, pair, left, right, seed=seed + step)
    return left, right


@pytest.mark.parametrize("seed", range(SEQUENCE_COUNT))
def test_mutation_sequence_keeps_indexed_paths_byte_equal(seed):
    """Random add/update/remove sequences: indexed == scan after every mutation."""
    left, right = _run_sequence(seed)
    # The equivalences above must have been served by the *incremental* path:
    # each source's shared index was built exactly once and absorbed every
    # subsequent journalled mutation by delta replay.
    stats = get_source_index(left, 2).stats + get_source_index(right, 2).stats
    assert stats.builds == 2
    assert stats.delta_applies >= SEQUENCE_LENGTH - 2


@pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 10))
@pytest.mark.parametrize("delta_log_limit", [0, 1])
def test_mutation_sequence_with_truncated_delta_log(seed, delta_log_limit):
    """The same differential fuzz with a delta log too short to replay.

    ``delta_log_limit=0`` journals nothing (every freshness check takes the
    content-hash fallback), ``1`` keeps exactly the latest mutation (replay
    succeeds only when queries interleave every mutation, which triangle
    steps occasionally break by touching the *other* source in between) — so
    both fallback branches run under the full oracle set.
    """
    left, right = _run_sequence(seed, delta_log_limit=delta_log_limit)
    if delta_log_limit == 0:
        stats = get_source_index(left, 2).stats + get_source_index(right, 2).stats
        assert stats.delta_applies == 0  # nothing replayable: pure fallback
        assert stats.builds > 2


class TestLifecycleEdgeCases:
    def test_remove_then_query_excludes_the_record(self, sources):
        left, right = sources
        index = get_source_index(left, 2)
        index.top_k(right.get("R0"), k=None)
        removed = left.remove("L0")
        assert removed.record_id == "L0"
        result = index.top_k(right.get("R0"), k=None)
        assert "L0" not in {record.record_id for record in result}
        assert [r.record_id for r in result] == [
            r.record_id for r in top_k_neighbours(right.get("R0"), list(left), k=None, indexed=False)
        ]

    def test_update_is_visible_to_the_next_query(self, sources):
        left, right = sources
        index = get_source_index(left, 2)
        index.top_k(right.get("R4"), k=None)  # build before mutating
        # Make L5 a near-duplicate of R4 (the netgear router): it must rank first.
        left.update(make_record("L5", "netgear wireless router", "netgear dual band wireless router", "79.00"))
        result = index.top_k(right.get("R4"), k=1)
        assert [record.record_id for record in result] == ["L5"]

    def test_interleaved_mutations_bump_version_each_time(self, sources):
        left, _ = sources
        before = left.data_version
        left.add(_random_record(random.Random(0), "F0"))
        left.update(_random_record(random.Random(1), "F0"))
        left.remove("F0")
        assert left.data_version == before + 3

    def test_update_preserves_insertion_order(self, sources):
        left, _ = sources
        order_before = left.ids()
        left.update(_random_record(random.Random(2), "L2"))
        assert left.ids() == order_before


class TestPersistedLifecycleFuzz:
    """The same differential fuzz, replayed through an on-disk artifact store.

    Each sequence runs twice against one store: the second replay warm-loads
    every index state the first replay persisted, so the equivalence
    assertions cover loaded indexes exactly as hard as built ones.
    """

    @pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 25))
    def test_mutation_sequence_with_artifact_store(self, seed, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        _run_sequence(seed, store=store)
        assert store.stats.index_saves > 0
        _run_sequence(seed, store=store)
        assert store.stats.index_loads > 0


def _scan_tokens(record: Record) -> frozenset[str]:
    """Blocking-token set derived straight from the tokenizer (scan semantics)."""
    from repro.text.tokenize import tokenize

    return frozenset(token for token in tokenize(record.as_text()) if len(token) >= 2)


def _positive_neighbourhood(record: Record, candidates) -> list[tuple[str, float]]:
    """The scored (overlap > 0) support ranking of ``record`` over ``candidates``."""
    from repro.data.blocking import token_jaccard

    query = _scan_tokens(record)
    scored = [
        (candidate.record_id, token_jaccard(query, _scan_tokens(candidate)))
        for candidate in candidates
    ]
    return sorted(
        ((rid, score) for rid, score in scored if score > 0.0),
        key=lambda item: (-item[1], item[0]),
    )


class TestChangedPairs:
    """``changed_pairs`` against a brute-force oracle and its stability contract."""

    @pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 10))
    def test_matches_brute_force_definition(self, seed):
        """Flagged set == scan-derived {member mutated, or member shares a
        token with any mutated record's old/new content}, fuzzed."""
        rng = random.Random(seed)
        left, right = toy_sources()
        pairs = [(l.record_id, r.record_id) for l in left for r in right]
        since_left, since_right = left.data_version, right.data_version
        counter = [100]
        journal: list[tuple[DataSource, Record | None, Record | None]] = []
        for _ in range(3):
            source = left if rng.random() < 0.5 else right
            before = {record.record_id: record for record in source}
            _apply_random_mutation(rng, source, counter)
            after = {record.record_id: record for record in source}
            for rid in before.keys() | after.keys():
                if before.get(rid) is not after.get(rid):
                    journal.append((source, before.get(rid), after.get(rid)))

        mutated_left = {r.record_id for s, old, new in journal if s is left for r in (old, new) if r}
        mutated_right = {r.record_id for s, old, new in journal if s is right for r in (old, new) if r}
        mutated_tokens: set[str] = set()
        for _, old, new in journal:
            for record in (old, new):
                if record is not None:
                    mutated_tokens |= _scan_tokens(record)
        touched_left = mutated_left | {
            r.record_id for r in left if _scan_tokens(r) & mutated_tokens
        }
        touched_right = mutated_right | {
            r.record_id for r in right if _scan_tokens(r) & mutated_tokens
        }
        expected = {
            (l, r) for l, r in pairs if l in touched_left or r in touched_right
        }
        assert changed_pairs(pairs, left, right, since_left, since_right) == expected

    def test_unchanged_pairs_keep_their_scored_support_neighbourhoods(self):
        """A pair *not* flagged kept the scored part of both members' support
        rankings bit-for-bit — the guarantee that makes re-explaining only the
        flagged pairs equivalent to re-explaining everything (wherever token
        overlap drives support selection)."""
        left, right = toy_sources()
        pairs = [(l.record_id, r.record_id) for l in left for r in right]
        before = {
            (l, r): (
                _positive_neighbourhood(left.get(l), list(right)),
                _positive_neighbourhood(right.get(r), list(left)),
            )
            for l, r in pairs
        }
        since_left, since_right = left.data_version, right.data_version
        left.update(make_record("L0", "sony bravia tv", "sony bravia big television", "499.00"))
        right.remove("R3")
        flagged = changed_pairs(pairs, left, right, since_left, since_right)
        assert flagged is not None
        unflagged = [pair for pair in pairs if pair not in flagged]
        assert unflagged  # the toy mutation must not flag everything
        for l, r in unflagged:
            assert _positive_neighbourhood(left.get(l), list(right)) == before[(l, r)][0]
            assert _positive_neighbourhood(right.get(r), list(left)) == before[(l, r)][1]

    def test_no_mutations_flags_nothing(self):
        left, right = toy_sources()
        pairs = [(l.record_id, r.record_id) for l in left for r in right]
        assert changed_pairs(pairs, left, right, left.data_version, right.data_version) == set()

    def test_truncated_log_returns_none(self):
        left, right = toy_sources()
        pairs = [(l.record_id, r.record_id) for l in left for r in right]
        since = left.data_version
        left.delta_log_limit = 0
        left.add(_random_record(random.Random(3), "F9"))
        assert changed_pairs(pairs, left, right, since, right.data_version) is None

    def test_accepts_record_pair_objects(self):
        left, right = toy_sources()
        pairs = [RecordPair(left.get("L0"), right.get("R0"), None)]
        since_left, since_right = left.data_version, right.data_version
        left.update(make_record("L0", "sony bravia tv", "sony bravia display", "499.00"))
        flagged = changed_pairs(pairs, left, right, since_left, since_right)
        assert flagged == {("L0", "R0")}


class TestRetiredValueEviction:
    """Delta-driven cache eviction stays byte-equal to never having cached."""

    @staticmethod
    def _toy_pairs(left, right):
        return [RecordPair(l, r, None) for l, r in zip(list(left)[:4], list(right)[:4])]

    def test_apply_source_deltas_drops_only_retired_entries(self):
        from repro.models.featurizer import ComparisonPairFeaturizer

        left, right = toy_sources()
        featurizer = ComparisonPairFeaturizer()
        featurizer.featurize(self._toy_pairs(left, right))
        since = left.data_version
        old = left.get("L0")
        kept_name = old.value("name")
        left.update(make_record("L0", kept_name, "sony bravia big screen", "499.00"))
        deltas = left.deltas_since(since)
        retired = {value for delta in deltas for value in delta.retired_values}
        assert retired  # the update must have retired the replaced strings
        assert kept_name not in retired  # the unchanged value stays live
        dropped = featurizer.apply_source_deltas(deltas)
        assert dropped > 0
        for value in retired:
            assert value not in featurizer.values._features
            assert all(value not in key for key in featurizer.comparisons._vectors)
            assert all(value not in key for key in featurizer.comparisons._similarities)
        # Values still live in records (e.g. the unchanged name) stay cached.
        assert kept_name in featurizer.values._features

    @pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 25))
    def test_eviction_never_changes_feature_matrices(self, seed):
        """featurize → mutate → evict → featurize == a cold featurizer's output."""
        import numpy as np

        from repro.models.featurizer import ComparisonPairFeaturizer

        rng = random.Random(seed)
        left, right = toy_sources()
        warm = ComparisonPairFeaturizer()
        warm.featurize(self._toy_pairs(left, right))
        counter = [200]
        since = left.data_version
        for _ in range(3):
            _apply_random_mutation(rng, left, counter)
        warm.apply_source_deltas(left.deltas_since(since))
        pairs = [RecordPair(l, rng.choice(list(right)), None) for l in left]
        cold = ComparisonPairFeaturizer()
        np.testing.assert_array_equal(warm.featurize(pairs), cold.featurize(pairs))

    def test_model_hook_evicts_through_the_featurizer(self):
        from repro.models.base import ERModel
        from repro.models.featurizer import ComparisonPairFeaturizer

        class Matcher(ERModel):
            def __init__(self):
                super().__init__(seed=0)
                self._featurizer = ComparisonPairFeaturizer()

            def _featurize_pair(self, pair):  # pragma: no cover - unused
                raise NotImplementedError

        left, right = toy_sources()
        matcher = Matcher()
        matcher.featurize(self._toy_pairs(left, right))
        since = left.data_version
        left.remove("L0")
        retired = {
            value for delta in left.deltas_since(since) for value in delta.retired_values
        }
        assert matcher.evict_featurizer_values(retired) > 0
        for value in retired:
            assert value not in matcher._featurizer.values._features
