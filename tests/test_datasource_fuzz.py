"""Differential fuzz suite for the mutable DataSource lifecycle.

Every mutation path of :class:`repro.data.table.DataSource` — ``add``,
``update``, ``remove`` — must leave the indexed candidate-generation stack
(:mod:`repro.data.indexing`) *byte-equal* to the full-scan golden reference.
This suite applies seeded random mutation sequences and, **after every single
mutation**, compares

* top-k similarity ranking (indexed vs scan, bounded and unbounded k),
* token blocking (indexed vs scan), and
* open-triangle search (indexed vs scan, including augmentation bookkeeping)

so any staleness window, interning leak or ordering divergence introduced by
a mutation is caught at the exact step that opened it.  A persistence variant
replays mutations against a source wired to an on-disk artifact store, so
save → mutate → warm-load cycles are fuzzed the same way.
"""

from __future__ import annotations

import random

import pytest

from repro.data.artifacts import ArtifactStore
from repro.data.blocking import token_blocking, top_k_neighbours
from repro.data.indexing import get_source_index
from repro.data.records import Record, RecordPair
from repro.data.table import DataSource
from repro.certa.triangles import find_open_triangles

from tests.helpers import LEFT_SCHEMA, SimilarityModel, make_record, toy_sources

#: Number of seeded mutation sequences the suite replays (acceptance: >= 200).
SEQUENCE_COUNT = 200

#: Mutations applied per sequence.
SEQUENCE_LENGTH = 6

_WORDS = (
    "sony", "bravia", "canon", "powershot", "bose", "soundlink", "garmin",
    "philips", "dvd", "camera", "speaker", "portable", "wireless", "router",
    "printer", "photo", "audio", "system", "theater", "digital", "compact",
    "bluetooth", "navigator", "progressive", "micro", "dual", "band",
)


def _random_record(rng: random.Random, record_id: str) -> Record:
    name = " ".join(rng.sample(_WORDS, rng.randint(2, 4)))
    description = " ".join(rng.sample(_WORDS, rng.randint(3, 6)))
    price = f"{rng.randint(10, 999)}.{rng.randint(0, 99):02d}"
    return make_record(record_id, name, description, price)


def _apply_random_mutation(rng: random.Random, source: DataSource, counter: list[int]) -> str:
    """One random lifecycle mutation through the public API; returns its name."""
    operations = ["add", "update"]
    if len(source) > 3:  # keep enough records for triangle search to stay meaningful
        operations.append("remove")
    operation = rng.choice(operations)
    if operation == "add":
        counter[0] += 1
        source.add(_random_record(rng, f"F{counter[0]}"))
    elif operation == "update":
        victim = rng.choice(source.ids())
        source.update(_random_record(rng, victim))
    else:
        source.remove(rng.choice(source.ids()))
    return operation


def _assert_ranking_equivalence(source: DataSource, queries) -> None:
    for query in queries:
        for k in (3, None):
            indexed = top_k_neighbours(query, source, k=k, indexed=True)
            scanned = top_k_neighbours(query, list(source), k=k, indexed=False)
            assert [r.record_id for r in indexed] == [r.record_id for r in scanned]


def _assert_blocking_equivalence(left: DataSource, right: DataSource) -> None:
    indexed = token_blocking(left, right, indexed=True)
    scanned = token_blocking(left, right, indexed=False)
    assert indexed.pairs == scanned.pairs
    assert indexed.reduction_ratio == scanned.reduction_ratio


def _triangle_fingerprint(result):
    return (
        [(t.side, t.support.record_id, tuple(sorted(t.support.values.items())), t.augmented)
         for t in result.triangles],
        result.requested,
        result.candidates_scored,
        result.augmented_count,
    )


def _assert_triangle_equivalence(model, pair, left, right, seed: int) -> None:
    indexed = find_open_triangles(model, pair, left, right, count=4, seed=seed, indexed=True)
    scanned = find_open_triangles(model, pair, left, right, count=4, seed=seed, indexed=False)
    assert _triangle_fingerprint(indexed) == _triangle_fingerprint(scanned)


def _run_sequence(seed: int, store: ArtifactStore | None = None) -> None:
    """One seeded lifecycle fuzz sequence with per-mutation equivalence checks."""
    rng = random.Random(seed)
    left, right = toy_sources()
    if store is not None:
        left.artifact_store = store
        right.artifact_store = store
    model = SimilarityModel()
    counter = [0]
    for step in range(SEQUENCE_LENGTH):
        target, other = (left, right) if rng.random() < 0.5 else (right, left)
        _apply_random_mutation(rng, target, counter)
        queries = rng.sample(list(other), min(2, len(other)))
        _assert_ranking_equivalence(target, queries)
        _assert_blocking_equivalence(left, right)
        pair = RecordPair(rng.choice(list(left)), rng.choice(list(right)), None)
        _assert_triangle_equivalence(model, pair, left, right, seed=seed + step)


@pytest.mark.parametrize("seed", range(SEQUENCE_COUNT))
def test_mutation_sequence_keeps_indexed_paths_byte_equal(seed):
    """Random add/update/remove sequences: indexed == scan after every mutation."""
    _run_sequence(seed)


class TestLifecycleEdgeCases:
    def test_remove_then_query_excludes_the_record(self, sources):
        left, right = sources
        index = get_source_index(left, 2)
        index.top_k(right.get("R0"), k=None)
        removed = left.remove("L0")
        assert removed.record_id == "L0"
        result = index.top_k(right.get("R0"), k=None)
        assert "L0" not in {record.record_id for record in result}
        assert [r.record_id for r in result] == [
            r.record_id for r in top_k_neighbours(right.get("R0"), list(left), k=None, indexed=False)
        ]

    def test_update_is_visible_to_the_next_query(self, sources):
        left, right = sources
        index = get_source_index(left, 2)
        index.top_k(right.get("R4"), k=None)  # build before mutating
        # Make L5 a near-duplicate of R4 (the netgear router): it must rank first.
        left.update(make_record("L5", "netgear wireless router", "netgear dual band wireless router", "79.00"))
        result = index.top_k(right.get("R4"), k=1)
        assert [record.record_id for record in result] == ["L5"]

    def test_interleaved_mutations_bump_version_each_time(self, sources):
        left, _ = sources
        before = left.data_version
        left.add(_random_record(random.Random(0), "F0"))
        left.update(_random_record(random.Random(1), "F0"))
        left.remove("F0")
        assert left.data_version == before + 3

    def test_update_preserves_insertion_order(self, sources):
        left, _ = sources
        order_before = left.ids()
        left.update(_random_record(random.Random(2), "L2"))
        assert left.ids() == order_before


class TestPersistedLifecycleFuzz:
    """The same differential fuzz, replayed through an on-disk artifact store.

    Each sequence runs twice against one store: the second replay warm-loads
    every index state the first replay persisted, so the equivalence
    assertions cover loaded indexes exactly as hard as built ones.
    """

    @pytest.mark.parametrize("seed", range(0, SEQUENCE_COUNT, 25))
    def test_mutation_sequence_with_artifact_store(self, seed, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        _run_sequence(seed, store=store)
        assert store.stats.index_saves > 0
        _run_sequence(seed, store=store)
        assert store.stats.index_loads > 0
