"""Property-style tests for the persistent artifact store (repro.data.artifacts).

The contract: a warm-loaded artifact is **byte-equivalent** to the structure a
fresh build would have produced — for token indexes (ranking, blocking,
triangle search, full CERTA explanations), featurizer caches (feature
matrices) and trained matchers (scores) — and any artifact that cannot be
*proved* safe (corrupt, truncated, version-skewed, content-mismatched) is
silently rebuilt, never silently reused.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.certa.explainer import CertaExplainer
from repro.data import artifacts as artifacts_module
from repro.data.artifacts import (
    ARTIFACT_DIR_ENV,
    ArtifactStore,
    dataset_fingerprint,
    default_store,
)
from repro.data.blocking import token_blocking, top_k_neighbours
from repro.data.indexing import _TOKEN_SET_CACHE, get_source_index
from repro.data.io import load_dataset, save_dataset
from repro.models import training as training_module
from repro.models.training import ModelCache

from tests.helpers import SimilarityModel, make_record, toy_dataset, toy_pairs, toy_sources


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def _fresh_sources(store=None):
    left, right = toy_sources()
    if store is not None:
        left.artifact_store = store
        right.artifact_store = store
    return left, right


def _scan_ids(query, source, k=None):
    return [r.record_id for r in top_k_neighbours(query, list(source), k=k, indexed=False)]


class TestIndexRoundTrip:
    def test_loaded_index_counts_a_load_not_a_build(self, store):
        left, right = _fresh_sources(store)
        query = right.get("R0")
        built = [r.record_id for r in get_source_index(left, 2).top_k(query, k=None)]

        left2, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        index = get_source_index(left2, 2)
        loaded = [r.record_id for r in index.top_k(query, k=None)]
        assert (index.builds, index.loads) == (0, 1)
        assert loaded == built == _scan_ids(query, left2)

    def test_loaded_index_serves_blocking_identically(self, store):
        left, right = _fresh_sources(store)
        reference = token_blocking(left, right, indexed=True)
        assert store.stats.index_saves == 2

        left2, right2 = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        warm = token_blocking(left2, right2, indexed=True)
        scanned = token_blocking(left2, right2, indexed=False)
        assert warm.pairs == reference.pairs == scanned.pairs
        assert store.stats.index_loads == 2

    def test_mutated_source_invalidates_the_artifact(self, store):
        left, right = _fresh_sources(store)
        query = right.get("R0")
        get_source_index(left, 2).top_k(query, k=3)

        left2, _ = _fresh_sources(store)
        left2.add(make_record("L9", "brand new unseen gadget", "totally new gadget", "5.00"))
        index = get_source_index(left2, 2)
        result = [r.record_id for r in index.top_k(query, k=None)]
        assert (index.builds, index.loads) == (1, 0)  # content moved: no reuse
        assert result == _scan_ids(query, left2)
        # ... and the rebuild persisted an artifact for the *new* content.
        assert store.index_path(left2.content_hash(), 2).exists()

    def test_in_place_mutation_never_reuses_the_artifact(self, store):
        """Bypassing the mutation API entirely still invalidates by content."""
        left, right = _fresh_sources(store)
        query = right.get("R0")
        get_source_index(left, 2).top_k(query, k=3)

        left2, _ = _fresh_sources(store)
        left2.records[0] = make_record("L0", "replaced in place", "replaced content", "1.00")
        index = get_source_index(left2, 2)
        result = [r.record_id for r in index.top_k(query, k=None)]
        assert index.loads == 0
        assert result == _scan_ids(query, left2)


def _rewrite_npz(path, mutate):
    """Load an npz artifact, apply ``mutate(arrays)``, and write it back."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    mutate(arrays)
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def _rewrite_manifest(arrays, change):
    manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
    change(manifest)
    arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)


def _corrupt_truncate(path):
    path.write_bytes(path.read_bytes()[: max(1, path.stat().st_size // 2)])


def _corrupt_garbage(path):
    path.write_bytes(b"\x00garbage\xff" * 64)


def _corrupt_schema_version(path):
    _rewrite_npz(
        path,
        lambda arrays: _rewrite_manifest(
            arrays, lambda manifest: manifest.update(schema_version=manifest["schema_version"] + 1)
        ),
    )


def _corrupt_content_hash(path):
    _rewrite_npz(
        path,
        lambda arrays: _rewrite_manifest(
            arrays, lambda manifest: manifest.update(content_hash="0" * len(manifest["content_hash"]))
        ),
    )


def _corrupt_token_payload(path):
    """Structurally valid, right hash, wrong derivations — the spot-check must catch it."""

    def mutate(arrays):
        blob = bytes(arrays["token_blob"]).decode("utf-8")
        mangled = "\n".join(token + "x" for token in blob.split("\n"))
        arrays["token_blob"] = np.frombuffer(mangled.encode("utf-8"), dtype=np.uint8)

    _rewrite_npz(path, mutate)


def _corrupt_dropped_record(path):
    def mutate(arrays):
        arrays["arena_offsets"] = arrays["arena_offsets"][:-1].copy()

    _rewrite_npz(path, mutate)


def _corrupt_posting_out_of_range(path):
    def mutate(arrays):
        postings = arrays["postings"].copy()
        record_count = json.loads(bytes(arrays["manifest"]).decode("utf-8"))["record_count"]
        postings[0] = record_count + 7
        arrays["postings"] = postings

    _rewrite_npz(path, mutate)


def _corrupt_unsorted_row(path):
    def mutate(arrays):
        postings = arrays["postings"].copy()
        token_offsets = arrays["token_offsets"]
        # Reverse the first posting row with more than one entry.
        lengths = np.diff(token_offsets)
        rows = np.nonzero(lengths > 1)[0]
        row = int(rows[0])
        first, last = int(token_offsets[row]), int(token_offsets[row + 1])
        postings[first:last] = postings[first:last][::-1]
        arrays["postings"] = postings

    _rewrite_npz(path, mutate)


CORRUPTIONS = {
    "truncated": _corrupt_truncate,
    "garbage_bytes": _corrupt_garbage,
    "schema_version_skew": _corrupt_schema_version,
    "content_hash_mismatch": _corrupt_content_hash,
    "wrong_derivations": _corrupt_token_payload,
    "dropped_record": _corrupt_dropped_record,
    "posting_out_of_range": _corrupt_posting_out_of_range,
    "unsorted_posting_row": _corrupt_unsorted_row,
}


class TestIndexCorruption:
    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS), ids=sorted(CORRUPTIONS))
    def test_damaged_artifact_rebuilds_and_stays_correct(self, store, corruption):
        """save → corrupt → load: graceful rebuild, never silent reuse."""
        left, right = _fresh_sources(store)
        query = right.get("R0")
        get_source_index(left, 2).top_k(query, k=3)
        path = store.index_path(left.content_hash(), 2)
        assert path.exists()
        CORRUPTIONS[corruption](path)

        left2, _ = _fresh_sources(store)
        _TOKEN_SET_CACHE.clear()
        index = get_source_index(left2, 2)
        result = [r.record_id for r in index.top_k(query, k=None)]
        assert index.loads == 0, f"{corruption}: damaged artifact was silently reused"
        assert index.builds == 1
        assert result == _scan_ids(query, left2)

    def test_missing_artifact_directory_is_a_plain_cold_start(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-created")
        left, right = _fresh_sources(store)
        index = get_source_index(left, 2)
        index.top_k(right.get("R0"), k=3)
        assert (index.builds, index.loads) == (1, 0)


class TestFeaturizerRoundTrip:
    def _featurize_workload(self, model, pairs):
        return model.featurize(pairs)

    def test_warm_cache_produces_byte_identical_matrices(self, store, ab_dataset, trained_deepmatcher):
        pairs = ab_dataset.test.pairs[:8]
        model = trained_deepmatcher.model
        fresh = self._featurize_workload(model, pairs)
        store.save_featurizer(model._featurizer)

        from repro.models.training import make_model

        twin = make_model("deepmatcher")
        assert store.warm_featurizer(twin._featurizer)
        twin._classifier = model._classifier  # weights irrelevant to featurisation
        warm = self._featurize_workload(twin, pairs)
        assert np.array_equal(fresh, warm)
        stats = twin._featurizer.stats
        assert stats.comparison_hits > 0 and stats.comparison_misses == 0

    def test_fingerprint_mismatch_is_a_miss(self, store, trained_deepmatcher):
        store.save_featurizer(trained_deepmatcher.model._featurizer)

        from repro.models.training import make_model

        other_seed = make_model("deepmatcher", seed=99)
        assert not store.warm_featurizer(other_seed._featurizer)
        other_family = make_model("ditto")
        assert not store.warm_featurizer(other_family._featurizer)
        assert store.stats.featurizer_misses == 2

    def test_merge_on_save_unions_entries(self, store, ab_dataset, trained_deepmatcher):
        model = trained_deepmatcher.model
        first_batch, second_batch = ab_dataset.test.pairs[:4], ab_dataset.test.pairs[4:8]
        model.clear_featurizer_cache()
        model.featurize(first_batch)
        store.save_featurizer(model._featurizer)
        model.clear_featurizer_cache()
        model.featurize(second_batch)
        store.save_featurizer(model._featurizer)

        from repro.models.training import make_model

        twin = make_model("deepmatcher")
        assert store.warm_featurizer(twin._featurizer)
        twin._classifier = model._classifier
        twin.featurize(first_batch + second_batch)
        stats = twin._featurizer.stats
        assert stats.comparison_misses == 0  # both batches' entries survived the merge


class TestTrainedModelRoundTrip:
    def test_second_process_loads_instead_of_training(self, store, ab_dataset, monkeypatch):
        warm_cache = ModelCache(fast=True, artifact_store=store)
        first = warm_cache.get("classical", ab_dataset)
        scores = first.model.predict_proba(ab_dataset.test.pairs[:10])
        assert store.stats.model_saves == 1

        def boom(*args, **kwargs):  # a warm start must never reach training
            raise AssertionError("train_model called despite a valid artifact")

        monkeypatch.setattr(training_module, "train_model", boom)
        fresh_cache = ModelCache(fast=True, artifact_store=store)
        second = fresh_cache.get("classical", ab_dataset)
        assert np.array_equal(second.model.predict_proba(ab_dataset.test.pairs[:10]), scores)
        assert second.report.as_dict() == first.report.as_dict()
        assert second.test_metrics == first.test_metrics
        assert store.stats.model_loads == 1

    def test_dataset_change_invalidates_the_model_artifact(self, store, ab_dataset):
        cache = ModelCache(fast=True, artifact_store=store)
        cache.get("classical", ab_dataset)
        mutated = toy_dataset()
        assert dataset_fingerprint(mutated) != dataset_fingerprint(ab_dataset)
        cache2 = ModelCache(fast=True, artifact_store=store)
        cache2.get("classical", mutated)
        assert store.stats.model_misses == 2  # cold start for each distinct input

    def test_mutated_dataset_retrains_in_the_same_process(self, monkeypatch):
        """The in-memory memo is fingerprint-keyed: a lifecycle mutation must
        retrain rather than serve the matcher fitted to the old data."""
        trainings = []
        original = training_module.train_model

        def counting_train(model_name, dataset, **kwargs):
            trainings.append(model_name)
            return original(model_name, dataset, **kwargs)

        monkeypatch.setattr(training_module, "train_model", counting_train)
        dataset = toy_dataset()
        cache = ModelCache(fast=True)
        cache.get("classical", dataset)
        cache.get("classical", dataset)
        assert trainings == ["classical"]  # memo hit while the data is unchanged
        dataset.left.update(
            make_record("L0", "sony bravia theater", "a very different description", "199.99")
        )
        cache.get("classical", dataset)
        assert trainings == ["classical", "classical"]  # mutation forces retraining

    def test_fast_flag_keys_separate_artifacts(self, store, ab_dataset):
        digest = dataset_fingerprint(ab_dataset)
        assert store.model_dir("classical", True, digest) != store.model_dir("classical", False, digest)

    def test_corrupt_model_metadata_falls_back_to_training(self, store, ab_dataset):
        cache = ModelCache(fast=True, artifact_store=store)
        cache.get("classical", ab_dataset)
        directory = store.model_dir("classical", True, dataset_fingerprint(ab_dataset))
        (directory / "trained.json").write_text("{not json", encoding="utf-8")
        cache2 = ModelCache(fast=True, artifact_store=store)
        trained = cache2.get("classical", ab_dataset)  # must retrain, not raise
        assert trained.model.is_fitted
        assert store.stats.model_saves == 2  # the retrain re-persisted the artifact


class TestDatasetWiring:
    def test_save_load_dataset_round_trip_warm_loads(self, store, tmp_path):
        dataset = toy_dataset()
        save_dataset(dataset, tmp_path / "ds", artifact_store=store)
        assert store.stats.index_saves == 2  # both sources persisted at save time

        _TOKEN_SET_CACHE.clear()
        loaded = load_dataset(tmp_path / "ds", artifact_store=store)
        index = get_source_index(loaded.left, 2)
        query = loaded.right.get("R0")
        result = [r.record_id for r in index.top_k(query, k=None)]
        assert (index.builds, index.loads) == (0, 1)
        assert result == _scan_ids(query, loaded.left)

    def test_tampered_table_fails_hash_verification(self, store, tmp_path):
        save_dataset(toy_dataset(), tmp_path / "ds")
        table = tmp_path / "ds" / "tableA.csv"
        table.write_text(table.read_text(encoding="utf-8").replace("sony", "pony"), encoding="utf-8")
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError, match="content hash"):
            load_dataset(tmp_path / "ds")

    def test_metadata_without_hashes_loads_unverified(self, tmp_path):
        """Pre-artifact-store datasets (original benchmark layout) still load."""
        save_dataset(toy_dataset(), tmp_path / "ds")
        metadata_path = tmp_path / "ds" / "metadata.json"
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        del metadata["content_hashes"]
        metadata_path.write_text(json.dumps(metadata), encoding="utf-8")
        table = tmp_path / "ds" / "tableA.csv"
        table.write_text(table.read_text(encoding="utf-8").replace("sony", "pony"), encoding="utf-8")
        loaded = load_dataset(tmp_path / "ds")  # no hashes recorded: nothing to verify
        assert "pony bravia theater" in {r.value("name") for r in loaded.left}


class TestEndToEndExplanationEquivalence:
    def test_certa_explanations_identical_on_loaded_artifacts(self, store):
        """Full CERTA explanations: warm-loaded == freshly built == scan."""
        model = SimilarityModel()
        left, right = _fresh_sources(store)
        pairs = toy_pairs(left, right)
        built_explainer = CertaExplainer(model, left, right, num_triangles=8, seed=0, indexed=True)
        built = [built_explainer.explain_full(pair) for pair in (pairs[0], pairs[-2])]
        assert store.stats.index_saves == 2

        _TOKEN_SET_CACHE.clear()
        left2, right2 = _fresh_sources(store)
        pairs2 = toy_pairs(left2, right2)
        warm_explainer = CertaExplainer(model, left2, right2, num_triangles=8, seed=0, indexed=True)
        scan_explainer = CertaExplainer(model, left2, right2, num_triangles=8, seed=0, indexed=False)
        for pair, reference in zip((pairs2[0], pairs2[-2]), built):
            warm = warm_explainer.explain_full(pair)
            scanned = scan_explainer.explain_full(pair)
            assert warm.saliency.scores == reference.saliency.scores == scanned.saliency.scores
            assert (
                warm.counterfactual.attribute_set
                == reference.counterfactual.attribute_set
                == scanned.counterfactual.attribute_set
            )
            assert warm.flips == reference.flips == scanned.flips
            assert warm.triangles_used == reference.triangles_used
        assert store.stats.index_loads == 2
        warm_stats = get_source_index(left2, 2).stats
        assert warm_stats.builds == 0 and warm_stats.loads == 1


class TestStoreInfrastructure:
    def test_stats_as_dict_round_trip(self, store):
        store.index_loads, store.model_saves = 3, 2
        view = store.stats.as_dict()
        assert view["index_loads"] == 3 and view["model_saves"] == 2
        assert set(view) == {
            "index_loads", "index_saves", "index_misses",
            "featurizer_loads", "featurizer_saves", "featurizer_misses",
            "model_loads", "model_saves", "model_misses", "quarantined",
        }

    def test_default_store_reads_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ARTIFACT_DIR_ENV, raising=False)
        assert default_store() is None
        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "env-store"))
        try:
            store = default_store()
            assert store is not None
            assert store is default_store()  # memoised per directory
            assert store.directory == tmp_path / "env-store"
        finally:
            artifacts_module._DEFAULT_STORES.clear()

    def test_atomic_writes_leave_no_temp_files(self, store):
        left, right = _fresh_sources(store)
        get_source_index(left, 2).top_k(right.get("R0"), k=2)
        leftovers = [path for path in store.directory.rglob(".*") if path.is_file()]
        assert leftovers == []


def test_merged_state_key_order_is_insertion_independent():
    """Regression: merged featurizer states must order keys deterministically.

    The merged dict's key order becomes the member order of the persisted npz
    archive; when the merge iterated a raw set union, two processes holding
    the same blocks in different insertion orders could write byte-different
    archives for identical cache contents.
    """

    def block(key, value):
        return {"keys": [key], "values": np.asarray([[value]], dtype=np.float64)}

    blocks = {name: block(f"{name}-key", float(index)) for index, name in enumerate("dbca")}
    forward = dict(sorted(blocks.items()))
    backward = dict(sorted(blocks.items(), reverse=True))
    extra = {"e": block("e-key", 9.0)}

    merged_forward = artifacts_module._merge_featurizer_states(forward, extra)
    merged_backward = artifacts_module._merge_featurizer_states(backward, extra)

    assert list(merged_forward) == sorted([*blocks, "e"])
    assert list(merged_forward) == list(merged_backward)
