"""The explanation service: golden concurrency, admission, budgets, chaos.

The load-bearing guarantee is **byte-identity**: an explanation served
through the full concurrent pipeline — admission queue, worker pool,
cross-request frontier coalescing, shared engine cache — must serialise to
exactly the bytes a direct single-threaded :class:`CertaExplainer` run
produces, including while a :class:`repro.faults.FaultPlan` is throwing
transient engine errors and ``ENOSPC`` at the stack.  Around that sit the
protocol tests: a full queue sheds with a clean
:class:`~repro.exceptions.AdmissionError` (never a partial explanation),
budget overruns fail whole with :class:`~repro.exceptions.BudgetError`, and
the scheduler/budget wrappers behave standalone.
"""

from __future__ import annotations

import asyncio
import errno
import json
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.certa.explainer import CertaExplainer
from repro.exceptions import (
    AdmissionError,
    BudgetError,
    ModelError,
    SealedSourceError,
    ServeError,
)
from repro.faults import FaultPlan, FaultRule
from repro.models.engine import PredictionEngine
from repro.serve import (
    BudgetedPredictor,
    ExplainRequest,
    ExplanationService,
    FrontierScheduler,
    ServeTarget,
    explanation_payload,
)

from tests.helpers import SimilarityModel, toy_pairs, toy_sources

NUM_TRIANGLES = 8
SEED = 7


class SlowModel(SimilarityModel):
    """Similarity scores behind a per-batch pause (drives coalescing/shedding)."""

    def __init__(self, pause: float = 0.02) -> None:
        super().__init__()
        self.pause = pause

    def predict_proba(self, pairs) -> np.ndarray:
        time.sleep(self.pause)
        return super().predict_proba(pairs)


class FailingModel(SimilarityModel):
    """Raises a permanent (non-transient) error on every batch."""

    def predict_proba(self, pairs) -> np.ndarray:
        raise ModelError("permanently broken matcher")


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def make_target(model=None, **overrides) -> ServeTarget:
    left, right = toy_sources()
    defaults = dict(
        name="toy",
        model=model if model is not None else SimilarityModel(),
        left_source=left,
        right_source=right,
        num_triangles=NUM_TRIANGLES,
        seed=SEED,
    )
    defaults.update(overrides)
    return ServeTarget(**defaults)


def direct_payloads(pairs) -> list[str]:
    """Canonical payload bytes from a fresh single-threaded explainer."""
    left, right = toy_sources()
    explainer = CertaExplainer(
        SimilarityModel(), left, right, num_triangles=NUM_TRIANGLES, seed=SEED
    )
    rebuilt = toy_pairs(left, right)
    by_key = {(p.left.record_id, p.right.record_id): p for p in rebuilt}
    return [
        canonical(
            explanation_payload(
                explainer.explain_full(by_key[(p.left.record_id, p.right.record_id)])
            )
        )
        for p in pairs
    ]


def serve(target: ServeTarget, requests, **service_kwargs):
    """Run one service lifetime over ``requests``; returns (responses, stats)."""

    async def main():
        async with ExplanationService([target], **service_kwargs) as svc:
            responses = await svc.explain_many(requests)
            return responses, svc.stats, svc.engine_stats(target.name)

    return asyncio.run(main())


# ------------------------------------------------------------ golden identity


class TestGoldenConcurrency:
    def test_sixteen_concurrent_clients_are_byte_identical(self):
        target = make_target()
        pairs = toy_pairs(target.left_source, target.right_source)[:4]
        # 16 clients over 4 distinct pairs: heavy frontier overlap, which is
        # exactly the condition under which coalescing + shared caching could
        # corrupt results if the engine or scheduler mixed up rows.
        requests = [
            ExplainRequest(target="toy", pair=pairs[i % 4], request_id=f"r{i}")
            for i in range(16)
        ]
        responses, stats, _ = serve(target, requests, workers=8, queue_limit=32)
        expected = direct_payloads(pairs)
        assert [r.status for r in responses] == ["ok"] * 16
        for i, response in enumerate(responses):
            assert canonical(response.payload) == expected[i % 4]
        assert stats.requests == 16 and stats.completed == 16
        assert stats.failed == 0 and stats.shed == 0
        assert stats.dispatches >= 1 and stats.merged_pairs > 0

    def test_coalescing_actually_merges_overlapping_frontiers(self):
        # A slow model widens the dispatch window so concurrent frontiers
        # pile up behind the in-flight batch and must be merged.
        target = make_target(model=SlowModel())
        pairs = toy_pairs(target.left_source, target.right_source)[:2]
        requests = [
            ExplainRequest(target="toy", pair=pairs[i % 2], request_id=f"r{i}")
            for i in range(8)
        ]
        responses, stats, _ = serve(target, requests, workers=8, queue_limit=16)
        assert all(r.ok for r in responses)
        assert stats.coalesced_dispatches >= 1
        assert stats.deduped_pairs > 0  # identical frontiers cost one model row
        expected = direct_payloads(pairs)
        for i, response in enumerate(responses):
            assert canonical(response.payload) == expected[i % 2]

    def test_served_identical_under_transient_engine_faults(self):
        faults.install_plan(
            FaultPlan(
                rules=(
                    FaultRule(scope="engine.batch", step=2, times=1),
                    FaultRule(scope="artifact.write", errno_code=errno.ENOSPC, times=0),
                )
            )
        )
        target = make_target()
        pairs = toy_pairs(target.left_source, target.right_source)[:2]
        requests = [
            ExplainRequest(target="toy", pair=pairs[i % 2], request_id=f"r{i}")
            for i in range(4)
        ]
        responses, _, engine_stats = serve(target, requests, workers=2, queue_limit=8)
        faults.clear_plan()
        assert all(r.ok for r in responses)
        assert engine_stats.retries >= 1  # the engine absorbed the injected fault
        expected = direct_payloads(pairs)
        for i, response in enumerate(responses):
            assert canonical(response.payload) == expected[i % 2]

    def test_request_level_transient_fault_is_retried(self):
        faults.install_plan(
            FaultPlan(rules=(FaultRule(scope="serve.request", step=1, times=1),))
        )
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target,
            [ExplainRequest(target="toy", pair=pair, request_id="r0")],
            workers=1,
            queue_limit=4,
            retries=1,
        )
        faults.clear_plan()
        (response,) = responses
        assert response.ok and response.retries == 1
        assert stats.retried == 1 and stats.completed == 1
        assert canonical(response.payload) == direct_payloads([pair])[0]

    def test_request_fault_without_retry_budget_is_clean_error(self):
        faults.install_plan(
            FaultPlan(rules=(FaultRule(scope="serve.request", step=1, times=1),))
        )
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target,
            [ExplainRequest(target="toy", pair=pair)],
            workers=1,
            queue_limit=4,
            retries=0,
        )
        faults.clear_plan()
        (response,) = responses
        assert response.status == "error" and response.payload is None
        assert response.error_type == "InjectedFault"
        assert stats.failed == 1 and stats.completed == 0

    def test_permanent_model_failure_is_error_response_not_partial(self):
        target = make_target(model=FailingModel())
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target, [ExplainRequest(target="toy", pair=pair)], workers=1, queue_limit=4
        )
        (response,) = responses
        assert response.status == "error" and response.payload is None
        assert response.error_type == "ServeError"  # scheduler-wrapped ModelError
        assert "permanently broken" in response.error
        assert stats.failed == 1
        with pytest.raises(ServeError):
            response.raise_for_status()


# ---------------------------------------------------------- admission control


class TestAdmissionControl:
    def test_full_queue_sheds_with_clean_taxonomy_error(self):
        target = make_target(model=SlowModel(pause=0.05))
        pairs = toy_pairs(target.left_source, target.right_source)[:2]
        requests = [
            ExplainRequest(target="toy", pair=pairs[i % 2], request_id=f"r{i}")
            for i in range(12)
        ]
        responses, stats, _ = serve(target, requests, workers=1, queue_limit=1)
        shed = [r for r in responses if r.status == "shed"]
        served = [r for r in responses if r.status == "ok"]
        assert shed, "a 1-deep queue under 12 instant submissions must shed"
        assert len(shed) + len(served) == 12
        assert stats.shed == len(shed)
        expected = direct_payloads(pairs)
        for response in responses:
            index = int(response.request_id[1:])
            if response.status == "ok":
                # an admitted request is never degraded by load
                assert canonical(response.payload) == expected[index % 2]
            else:
                assert response.payload is None
                assert response.error_type == "AdmissionError"
                with pytest.raises(AdmissionError, match="admission queue"):
                    response.raise_for_status()

    def test_submit_on_stopped_service_raises(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]

        async def main():
            svc = ExplanationService([target])
            with pytest.raises(ServeError, match="not started"):
                await svc.submit(ExplainRequest(target="toy", pair=pair))
            async with svc:
                pass
            with pytest.raises(ServeError, match="not started"):
                await svc.submit(ExplainRequest(target="toy", pair=pair))

        asyncio.run(main())

    def test_unknown_target_raises(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]

        async def main():
            async with ExplanationService([target]) as svc:
                with pytest.raises(ServeError, match="unknown serve target"):
                    await svc.submit(ExplainRequest(target="nope", pair=pair))
                with pytest.raises(ServeError, match="unknown serve target"):
                    svc.engine_stats("nope")

        asyncio.run(main())

    def test_duplicate_and_empty_targets_are_rejected(self):
        target = make_target()
        with pytest.raises(ServeError, match="duplicate"):
            ExplanationService([target, make_target()])
        with pytest.raises(ServeError, match="at least one"):
            ExplanationService([])


# ------------------------------------------------------------------- budgets


class TestBudgets:
    def test_expired_deadline_fails_whole_with_budget_error(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target,
            [ExplainRequest(target="toy", pair=pair, deadline_seconds=1e-9)],
            workers=1,
            queue_limit=4,
        )
        (response,) = responses
        assert response.status == "error" and response.payload is None
        assert response.error_type == "BudgetError"
        assert response.budget == "deadline"
        assert stats.budget_deadline == 1
        with pytest.raises(BudgetError, match="deadline"):
            response.raise_for_status()

    def test_lattice_node_budget_fails_whole_with_budget_error(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target,
            [ExplainRequest(target="toy", pair=pair, max_lattice_nodes=1)],
            workers=1,
            queue_limit=4,
        )
        (response,) = responses
        assert response.status == "error"
        assert response.error_type == "BudgetError"
        assert response.budget == "lattice_nodes"
        assert stats.budget_nodes == 1

    def test_budget_error_is_never_retried(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, stats, _ = serve(
            target,
            [ExplainRequest(target="toy", pair=pair, max_lattice_nodes=1)],
            workers=1,
            queue_limit=4,
            retries=3,
        )
        (response,) = responses
        assert response.error_type == "BudgetError" and response.retries == 0
        assert stats.retried == 0

    def test_generous_budgets_do_not_change_the_explanation(self):
        target = make_target()
        pair = toy_pairs(target.left_source, target.right_source)[0]
        responses, _, _ = serve(
            target,
            [
                ExplainRequest(
                    target="toy", pair=pair, deadline_seconds=300.0, max_lattice_nodes=10**6
                )
            ],
            workers=1,
            queue_limit=4,
        )
        (response,) = responses
        assert response.ok
        assert canonical(response.payload) == direct_payloads([pair])[0]


# --------------------------------------------------------- scheduler standalone


class TestFrontierScheduler:
    def test_scores_match_the_engine_exactly(self, labelled_pairs):
        model = SimilarityModel()
        pairs = [p for p in labelled_pairs]
        expected = PredictionEngine(SimilarityModel()).predict_proba(pairs)
        with FrontierScheduler(PredictionEngine(model)) as scheduler:
            scores = scheduler.predict_proba(pairs)
            single = scheduler.predict_pair(pairs[0])
        np.testing.assert_array_equal(scores, expected)
        assert single == expected[0]

    def test_concurrent_submissions_coalesce(self, labelled_pairs):
        scheduler = FrontierScheduler(PredictionEngine(SlowModel())).start()
        results: dict[int, np.ndarray] = {}

        def submit(index: int) -> None:
            results[index] = scheduler.predict_proba(labelled_pairs[:4])

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        scheduler.close()
        assert scheduler.submitted == 8
        # The first dispatch takes whatever arrived; everything queued behind
        # its model pause is merged into the next one.
        assert scheduler.dispatches < scheduler.submitted
        assert scheduler.coalesced_dispatches >= 1
        assert scheduler.deduped_pairs > 0
        expected = PredictionEngine(SimilarityModel()).predict_proba(labelled_pairs[:4])
        for scores in results.values():
            np.testing.assert_array_equal(scores, expected)

    def test_unstarted_and_closed_schedulers_refuse_tickets(self, labelled_pairs):
        scheduler = FrontierScheduler(PredictionEngine(SimilarityModel()))
        with pytest.raises(ServeError, match="not started"):
            scheduler.predict_proba(labelled_pairs[:1])
        scheduler.start()
        scheduler.close()
        with pytest.raises(ServeError, match="closed"):
            scheduler.predict_proba(labelled_pairs[:1])
        with pytest.raises(ServeError, match="closed"):
            scheduler.start()

    def test_dispatch_failure_reaches_every_submitter_and_dispatcher_survives(
        self, labelled_pairs
    ):
        flaky = SimilarityModel()
        original = flaky.predict_proba

        def broken(pairs):
            raise ModelError("boom")

        engine = PredictionEngine(flaky)
        with FrontierScheduler(engine) as scheduler:
            flaky.predict_proba = broken
            with pytest.raises(ServeError, match="dispatch failed") as excinfo:
                scheduler.predict_proba(labelled_pairs[:2])
            assert isinstance(excinfo.value.__cause__, ModelError)
            # the dispatcher must survive a failed dispatch
            flaky.predict_proba = original
            engine.clear_cache()
            scores = scheduler.predict_proba(labelled_pairs[:2])
        np.testing.assert_array_equal(
            scores, PredictionEngine(SimilarityModel()).predict_proba(labelled_pairs[:2])
        )

    def test_empty_frontier_short_circuits(self):
        scheduler = FrontierScheduler(PredictionEngine(SimilarityModel()))
        assert scheduler.predict_proba([]).shape == (0,)  # no ticket, no start needed
        assert scheduler.submitted == 0


class TestBudgetedPredictor:
    def test_counts_scheduled_predictions(self, labelled_pairs):
        predictor = BudgetedPredictor(PredictionEngine(SimilarityModel()), max_nodes=10)
        predictor.predict_proba(labelled_pairs[:4])
        predictor.predict_pair(labelled_pairs[0])
        assert predictor.scheduled == 5
        with pytest.raises(BudgetError, match="lattice-node budget"):
            predictor.predict_proba(labelled_pairs[:6])
        assert predictor.tripped == "lattice_nodes"
        assert predictor.scheduled == 5  # the refused frontier is not counted

    def test_deadline_checked_before_submission(self, labelled_pairs):
        predictor = BudgetedPredictor(
            PredictionEngine(SimilarityModel()), deadline_at=time.monotonic() - 1.0
        )
        with pytest.raises(BudgetError, match="deadline"):
            predictor.predict_pair(labelled_pairs[0])
        assert predictor.tripped == "deadline"

    def test_unlimited_budgets_pass_through(self, labelled_pairs):
        engine = PredictionEngine(SimilarityModel())
        predictor = BudgetedPredictor(engine)
        scores = predictor.predict_proba(labelled_pairs)
        np.testing.assert_array_equal(scores, engine.predict_proba(labelled_pairs))


# ----------------------------------------------------------- service plumbing


class TestServicePlumbing:
    def test_sources_are_sealed_at_startup(self, similarity_model):
        target = make_target(model=similarity_model)

        async def main():
            async with ExplanationService([target]):
                assert target.left_source.sealed and target.right_source.sealed
                with pytest.raises(SealedSourceError):
                    target.left_source.remove("L0")

        asyncio.run(main())

    def test_seal_sources_false_leaves_sources_mutable(self, similarity_model):
        target = make_target(model=similarity_model)

        async def main():
            async with ExplanationService([target], seal_sources=False):
                assert not target.left_source.sealed

        asyncio.run(main())

    def test_stats_roundtrip_and_latency_percentiles(self):
        target = make_target()
        pairs = toy_pairs(target.left_source, target.right_source)[:2]
        requests = [ExplainRequest(target="toy", pair=pairs[i % 2]) for i in range(6)]
        _, stats, _ = serve(target, requests, workers=2, queue_limit=8)
        payload = stats.as_dict()
        assert payload["requests"] == 6 and payload["completed"] == 6
        assert payload["p50_latency_ms"] > 0.0
        assert payload["p99_latency_ms"] >= payload["p50_latency_ms"]

    def test_explanation_payload_is_deterministic(self, similarity_model, match_pair):
        left, right = toy_sources()
        explainer = CertaExplainer(
            similarity_model, left, right, num_triangles=NUM_TRIANGLES, seed=SEED
        )
        first = explanation_payload(explainer.explain_full(match_pair))
        second = explanation_payload(explainer.explain_full(match_pair))
        assert canonical(first) == canonical(second)
        json.loads(canonical(first))  # payload must be valid JSON end to end
