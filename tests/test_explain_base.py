"""Tests for repro.explain.base and repro.explain.sampling."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data.records import MISSING_VALUE
from repro.exceptions import ExplanationError
from repro.explain.base import (
    CounterfactualExample,
    CounterfactualExplanation,
    SaliencyExplanation,
    apply_attribute_changes,
    changed_attribute_names,
    pair_attribute_names,
    prefixed_attribute,
    split_prefixed,
)
from repro.explain.sampling import (
    AttributeValuePool,
    aligned_opposite_value,
    perturb_pair,
    sample_binary_perturbations,
)


class TestPrefixing:
    def test_prefixed_attribute(self):
        assert prefixed_attribute("left", "name") == "left_name"
        assert prefixed_attribute("right", "name") == "right_name"

    def test_prefixed_attribute_invalid_side(self):
        with pytest.raises(ExplanationError):
            prefixed_attribute("middle", "name")

    def test_split_prefixed_roundtrip(self):
        assert split_prefixed("left_name") == ("left", "name")
        assert split_prefixed("right_price") == ("right", "price")

    def test_split_prefixed_invalid(self):
        with pytest.raises(ExplanationError):
            split_prefixed("name")

    def test_pair_attribute_names(self, match_pair):
        names = pair_attribute_names(match_pair)
        assert names == (
            "left_name", "left_description", "left_price",
            "right_name", "right_description", "right_price",
        )


class TestApplyChanges:
    def test_apply_changes_both_sides(self, match_pair):
        changed = apply_attribute_changes(
            match_pair, {"left_name": "new left", "right_price": "42"}
        )
        assert changed.left.value("name") == "new left"
        assert changed.right.value("price") == "42"
        assert changed.left.value("description") == match_pair.left.value("description")

    def test_apply_changes_preserves_label(self, match_pair):
        changed = apply_attribute_changes(match_pair, {"left_name": "x"})
        assert changed.label == match_pair.label

    def test_changed_attribute_names(self, match_pair):
        changed = apply_attribute_changes(match_pair, {"left_name": "x", "right_price": "1"})
        names = changed_attribute_names(match_pair, changed)
        assert set(names) == {"left_name", "right_price"}


class TestSaliencyExplanation:
    def _explanation(self, match_pair):
        return SaliencyExplanation(
            pair=match_pair,
            prediction=0.8,
            scores={"left_name": 0.5, "left_price": 0.1, "right_name": 0.3},
            method="test",
        )

    def test_ranked_descending(self, match_pair):
        ranked = self._explanation(match_pair).ranked()
        assert [name for name, _ in ranked] == ["left_name", "right_name", "left_price"]

    def test_top_attributes(self, match_pair):
        assert self._explanation(match_pair).top_attributes(2) == ["left_name", "right_name"]

    def test_score_of_missing_attribute(self, match_pair):
        assert self._explanation(match_pair).score_of("right_price") == 0.0

    def test_side_scores(self, match_pair):
        left_scores = self._explanation(match_pair).side_scores("left")
        assert left_scores == {"name": 0.5, "price": 0.1}

    def test_predicted_match_flag(self, match_pair):
        assert self._explanation(match_pair).predicted_match is True

    def test_normalised_sums_to_one(self, match_pair):
        normalised = self._explanation(match_pair).normalised()
        assert sum(normalised.scores.values()) == pytest.approx(1.0)

    def test_normalised_zero_scores_is_identity(self, match_pair):
        explanation = SaliencyExplanation(match_pair, 0.8, {"left_name": 0.0}, "test")
        assert explanation.normalised() is explanation


class TestCounterfactualExplanation:
    def _example(self, match_pair, score):
        return CounterfactualExample(
            pair=match_pair, changed_attributes=("left_name",), score=score, original_score=0.9
        )

    def test_flipped_detection(self, match_pair):
        assert self._example(match_pair, 0.2).flipped is True
        assert self._example(match_pair, 0.8).flipped is False

    def test_valid_examples_and_best(self, match_pair):
        explanation = CounterfactualExplanation(
            pair=match_pair,
            prediction=0.9,
            examples=[self._example(match_pair, 0.2), self._example(match_pair, 0.7)],
            method="test",
        )
        assert len(explanation.valid_examples()) == 1
        assert explanation.best_example().score == 0.2
        assert explanation.count() == 2

    def test_best_example_none_when_no_flip(self, match_pair):
        explanation = CounterfactualExplanation(
            pair=match_pair, prediction=0.9, examples=[self._example(match_pair, 0.8)], method="test"
        )
        assert explanation.best_example() is None

    def test_changed_values(self, match_pair):
        example = self._example(match_pair, 0.2)
        assert example.changed_values() == {"left_name": match_pair.left.value("name")}


class TestPerturbationOperators:
    def test_drop_blanks_values(self, match_pair):
        perturbed = perturb_pair(match_pair, ["left_name", "right_price"], operator="drop")
        assert perturbed.left.value("name") == MISSING_VALUE
        assert perturbed.right.value("price") == MISSING_VALUE

    def test_copy_takes_opposite_value(self, match_pair):
        perturbed = perturb_pair(match_pair, ["left_name"], operator="copy")
        assert perturbed.left.value("name") == match_pair.right.value("name")

    def test_copy_right_side(self, match_pair):
        perturbed = perturb_pair(match_pair, ["right_description"], operator="copy")
        assert perturbed.right.value("description") == match_pair.left.value("description")

    def test_unknown_operator_rejected(self, match_pair):
        with pytest.raises(ValueError):
            perturb_pair(match_pair, ["left_name"], operator="bogus")

    def test_aligned_opposite_value_same_schema(self, match_pair):
        assert aligned_opposite_value(match_pair, "left_price") == match_pair.right.value("price")


class TestBinaryPerturbations:
    def test_original_pair_is_first_sample(self, match_pair):
        names, samples = sample_binary_perturbations(match_pair, n_samples=5, rng=random.Random(0))
        assert np.all(samples[0].mask == 1.0)
        assert samples[0].pair is match_pair
        assert len(names) == 6

    def test_sample_count(self, match_pair):
        _, samples = sample_binary_perturbations(match_pair, n_samples=7, rng=random.Random(0))
        assert len(samples) == 8  # original + 7

    def test_masks_reflect_perturbations(self, match_pair):
        names, samples = sample_binary_perturbations(match_pair, n_samples=10, rng=random.Random(1))
        for sample in samples[1:]:
            for name, active in zip(names, sample.mask):
                if not active and name.startswith("left_"):
                    attribute = name[len("left_"):]
                    assert sample.pair.left.value(attribute) == MISSING_VALUE

    def test_no_sample_is_fully_active_except_original(self, match_pair):
        _, samples = sample_binary_perturbations(match_pair, n_samples=20, rng=random.Random(2))
        for sample in samples[1:]:
            assert sample.mask.sum() < len(sample.mask)


class TestAttributeValuePool:
    def test_pool_covers_both_sides(self, sources):
        left, right = sources
        pool = AttributeValuePool.from_sources(left, right)
        assert "left_name" in pool.values
        assert "right_price" in pool.values

    def test_sample_avoids_excluded_value_when_possible(self, sources):
        left, right = sources
        pool = AttributeValuePool.from_sources(left, right)
        rng = random.Random(0)
        for _ in range(10):
            value = pool.sample_value("left_name", rng, exclude="sony bravia theater")
            assert value != "sony bravia theater"

    def test_sample_unknown_attribute_returns_missing(self, sources):
        left, right = sources
        pool = AttributeValuePool.from_sources(left, right)
        assert pool.sample_value("left_bogus", random.Random(0)) == MISSING_VALUE
