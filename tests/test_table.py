"""Tests for repro.data.table.DataSource."""

from __future__ import annotations

import random

import pytest

from repro.data.records import Record, Schema
from repro.data.table import DataSource
from repro.exceptions import DatasetError, SchemaError, SealedSourceError

from tests.helpers import LEFT_SCHEMA, make_record, toy_sources


class TestLifecycleMutations:
    def test_update_replaces_and_bumps_version(self, sources):
        left, _ = sources
        version = left.data_version
        old = left.update(make_record("L2", "canon powershot mark ii", "canon camera updated", "359.0"))
        assert old.value("name") == "canon powershot camera"
        assert left.get("L2").value("name") == "canon powershot mark ii"
        assert left.data_version == version + 1
        assert len(left) == 6

    def test_update_keeps_insertion_position(self, sources):
        left, _ = sources
        order = left.ids()
        left.update(make_record("L3", "bose speaker revised", "bose revised", "131.0"))
        assert left.ids() == order

    def test_update_unknown_id_raises(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError, match="unknown record id"):
            left.update(make_record("L99", "ghost", "ghost", "0.0"))

    def test_update_validates_schema(self, sources):
        left, _ = sources
        bad = Record(record_id="L0", values={"name": "x"}, source="U")
        with pytest.raises(SchemaError):
            left.update(bad)

    def test_remove_returns_record_and_bumps_version(self, sources):
        left, _ = sources
        version = left.data_version
        removed = left.remove("L4")
        assert removed.record_id == "L4"
        assert "L4" not in left
        assert len(left) == 5
        assert left.data_version == version + 1

    def test_remove_unknown_id_raises(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError, match="unknown record id"):
            left.remove("L99")

    def test_remove_then_add_same_id(self, sources):
        left, _ = sources
        left.remove("L0")
        left.add(make_record("L0", "reborn record", "reborn", "1.0"))
        assert left.get("L0").value("name") == "reborn record"


class TestContentHash:
    def test_insertion_order_does_not_matter(self, sources):
        left, _ = sources
        shuffled = DataSource(
            name=left.name, schema=left.schema, records=list(reversed(left.records))
        )
        assert shuffled.content_hash() == left.content_hash()

    def test_every_mutation_kind_changes_the_hash(self, sources):
        left, _ = sources
        baseline = left.content_hash()
        left.add(make_record("L7", "new thing", "new thing description", "9.0"))
        after_add = left.content_hash()
        assert after_add != baseline
        left.update(make_record("L7", "renamed thing", "new thing description", "9.0"))
        after_update = left.content_hash()
        assert after_update != after_add
        left.remove("L7")
        assert left.content_hash() == baseline  # back to the original content

    def test_in_place_mutation_changes_the_hash(self, sources):
        left, _ = sources
        baseline = left.content_hash()
        version = left.data_version
        left.records[1] = make_record("L1", "swapped in place", "bypassing the api", "2.0")
        assert left.data_version == version
        assert left.content_hash() != baseline

    def test_source_tag_is_not_content(self, sources):
        """CSV round-trips re-tag sources; the hash must survive that."""
        left, _ = sources
        retagged = DataSource(
            name=left.name,
            schema=left.schema,
            records=[
                Record(record_id=r.record_id, values=dict(r.values), source="V")
                for r in left.records
            ],
        )
        assert retagged.content_hash() == left.content_hash()

    def test_identical_content_hashes_equal_across_instances(self, sources):
        left, _ = sources
        twin = DataSource(name="other-name", schema=left.schema, records=list(left.records))
        assert twin.content_hash() == left.content_hash()

    def test_incremental_hash_equals_recompute_after_mutations(self, sources):
        """The O(1) per-mutation hash carry is bit-equal to hashing from scratch."""
        left, _ = sources
        left.add(make_record("L7", "alpha beta", "gamma", "1.0"))
        left.update(make_record("L1", "delta epsilon", "zeta", "2.0"))
        left.remove("L3")
        rebuilt = DataSource(name=left.name, schema=left.schema, records=list(left.records))
        assert left.content_hash() == rebuilt.content_hash()

    def test_hash_is_cached_per_version(self, sources):
        """An unchanged source never re-hashes its records (the O(n) bugfix)."""
        left, _ = sources
        left.content_hash()
        state = left._hash_state
        assert state is not None
        left.content_hash()
        assert left._hash_state is state  # served from cache, not rebuilt
        left.add(make_record("L7", "x", "y", "1.0"))
        left.content_hash()
        assert left._hash_state is not state


class TestDeltaLog:
    def test_deltas_since_replays_the_journal(self, sources):
        left, _ = sources
        start = left.data_version
        left.add(make_record("L7", "one", "two", "1.0"))
        left.update(make_record("L0", "sony bravia theater", "changed description", "199.99"))
        left.remove("L4")
        deltas = left.deltas_since(start)
        assert [delta.op for delta in deltas] == ["add", "update", "remove"]
        assert [delta.version for delta in deltas] == [start + 1, start + 2, start + 3]
        assert deltas[0].old is None and deltas[0].new.record_id == "L7"
        assert deltas[1].old.record_id == "L0" and deltas[1].new.record_id == "L0"
        assert deltas[2].new is None and deltas[2].old.record_id == "L4"

    def test_deltas_since_current_version_is_empty(self, sources):
        left, _ = sources
        assert left.deltas_since(left.data_version) == []

    def test_truncated_log_returns_none(self, sources):
        left, _ = sources
        left.delta_log_limit = 2
        start = left.data_version
        for index in range(3):
            left.add(make_record(f"L{7 + index}", "n", "d", "1.0"))
        assert left.deltas_since(start) is None
        assert len(left.deltas_since(start + 1)) == 2

    def test_future_version_returns_none(self, sources):
        left, _ = sources
        assert left.deltas_since(left.data_version + 1) is None

    def test_update_journals_retired_values(self, sources):
        """Value strings no longer held by any live record are journalled."""
        left, _ = sources
        old = left.get("L0")
        start = left.data_version
        left.update(make_record("L0", old.value("name"), "completely new words", "199.99"))
        (delta,) = left.deltas_since(start)
        assert old.value("description") in delta.retired_values
        assert old.value("name") not in delta.retired_values  # still live in L0
        assert old.as_text() in delta.retired_values

    def test_shared_values_are_not_retired(self):
        records = [make_record("a", "sony", "desc a", "1"), make_record("b", "sony", "desc b", "2")]
        source = DataSource(name="s", schema=LEFT_SCHEMA, records=records)
        start = source.data_version
        source.remove("a")
        (delta,) = source.deltas_since(start)
        assert "sony" not in delta.retired_values  # record "b" still holds it
        assert "desc a" in delta.retired_values


class TestPicklingExcludesIndexCache:
    def test_pickle_round_trip_drops_token_indexes(self, sources):
        import pickle

        from repro.data.indexing import get_source_index

        left, right = sources
        get_source_index(left, 2).top_k(right.get("R0"), k=3)
        assert left._token_indexes
        clone = pickle.loads(pickle.dumps(left))
        assert getattr(clone, "_token_indexes", None) is None
        assert clone.ids() == left.ids()
        assert clone.content_hash() == left.content_hash()

    def test_deepcopy_drops_token_indexes(self, sources):
        import copy

        from repro.data.indexing import get_source_index

        left, right = sources
        get_source_index(left, 2).top_k(right.get("R0"), k=3)
        clone = copy.deepcopy(left)
        assert getattr(clone, "_token_indexes", None) is None
        # The clone starts index-less but journals and hashes independently.
        clone.add(make_record("L7", "fresh", "record", "1.0"))
        assert clone.content_hash() != left.content_hash()
        assert left._token_indexes  # the original keeps its live index


class TestDataSourceConstruction:
    def test_records_are_indexed_by_id(self, sources):
        left, _ = sources
        assert left.get("L0").value("name").startswith("sony")

    def test_duplicate_ids_rejected(self):
        records = [make_record("L0", "a", "b", "1"), make_record("L0", "c", "d", "2")]
        with pytest.raises(DatasetError):
            DataSource(name="dup", schema=LEFT_SCHEMA, records=records)

    def test_schema_mismatch_rejected(self):
        schema = Schema.from_names(["only"])
        bad = Record.from_raw("x", {"only": "value"}, schema)
        with pytest.raises(SchemaError):
            DataSource(name="bad", schema=LEFT_SCHEMA, records=[bad])

    def test_len_and_iteration(self, sources):
        left, _ = sources
        assert len(left) == 6
        assert len(list(left)) == 6

    def test_contains_by_id(self, sources):
        left, _ = sources
        assert "L0" in left
        assert "missing" not in left


class TestDataSourceOperations:
    def test_add_validates_schema(self, sources):
        left, _ = sources
        schema = Schema.from_names(["only"])
        with pytest.raises(SchemaError):
            left.add(Record.from_raw("new", {"only": "v"}, schema))

    def test_add_rejects_duplicate_id(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError):
            left.add(make_record("L0", "a", "b", "1"))

    def test_add_appends(self, sources):
        left, _ = sources
        left.add(make_record("L99", "new product", "new description", "5"))
        assert "L99" in left
        assert len(left) == 7

    def test_get_unknown_raises(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError):
            left.get("does-not-exist")

    def test_ids_order(self, sources):
        left, _ = sources
        assert left.ids()[:3] == ["L0", "L1", "L2"]

    def test_sample_respects_exclusions(self, sources):
        left, _ = sources
        sampled = left.sample(10, rng=random.Random(0), exclude=["L0"])
        assert all(record.record_id != "L0" for record in sampled)

    def test_sample_caps_at_population(self, sources):
        left, _ = sources
        assert len(left.sample(100)) == len(left)

    def test_sample_is_deterministic_given_rng(self, sources):
        left, _ = sources
        first = [r.record_id for r in left.sample(3, rng=random.Random(42))]
        second = [r.record_id for r in left.sample(3, rng=random.Random(42))]
        assert first == second

    def test_filter_returns_new_source(self, sources):
        left, _ = sources
        filtered = left.filter(lambda record: "sony" in record.value("name"))
        assert len(filtered) == 1
        assert len(left) == 6

    def test_vocabulary_whole_source(self, sources):
        left, _ = sources
        vocabulary = left.vocabulary()
        assert "sony" in vocabulary
        assert "bose" in vocabulary

    def test_vocabulary_single_attribute(self, sources):
        left, _ = sources
        vocabulary = left.vocabulary("price")
        assert "199.99" in vocabulary
        assert "sony" not in vocabulary

    def test_distinct_values_excludes_missing(self):
        records = [
            make_record("a", "sony", "", "1"),
            make_record("b", "sony", "desc", "2"),
        ]
        source = DataSource(name="s", schema=LEFT_SCHEMA, records=records)
        assert source.distinct_values("description") == ["desc"]
        assert source.distinct_values("name") == ["sony"]

    def test_value_statistics_shape(self, sources):
        left, _ = sources
        stats = left.value_statistics()
        assert set(stats) == set(LEFT_SCHEMA.attributes)
        for attribute_stats in stats.values():
            assert 0.0 <= attribute_stats["missing_rate"] <= 1.0
            assert attribute_stats["distinct"] >= 0

    def test_from_rows_generates_ids(self):
        schema = Schema.from_names(["name"])
        source = DataSource.from_rows("rows", schema, [{"name": "a"}, {"name": "b"}])
        assert source.ids() == ["rows-0", "rows-1"]

    def test_from_rows_with_id_attribute(self):
        schema = Schema.from_names(["name"])
        source = DataSource.from_rows(
            "rows", schema, [{"id": "x1", "name": "a"}], id_attribute="id"
        )
        assert source.ids() == ["x1"]


class TestSealing:
    def test_seal_is_idempotent_and_returns_self(self, sources):
        left, _ = sources
        assert not left.sealed
        assert left.seal() is left
        assert left.sealed
        left.seal()  # second seal is a no-op
        assert left.sealed

    def test_mutations_on_sealed_source_raise(self, sources):
        left, _ = sources
        left.seal()
        with pytest.raises(SealedSourceError, match="sealed"):
            left.add(make_record("L9", "new", "new thing", "1.0"))
        with pytest.raises(SealedSourceError, match="sealed"):
            left.update(make_record("L0", "changed", "changed", "2.0"))
        with pytest.raises(SealedSourceError, match="sealed"):
            left.remove("L0")
        # the failed mutations left no trace
        assert len(left) == 6
        assert left.get("L0").value("name") == "sony bravia theater"

    def test_sealed_source_error_is_a_dataset_error(self, sources):
        left, _ = sources
        left.seal()
        with pytest.raises(DatasetError):
            left.remove("L0")

    def test_sealed_hash_skips_the_identity_sweep(self, sources):
        """Once sealed, repeated content hashes are version-check only: the
        cached state must be reused without re-walking the record list."""
        left, _ = sources
        left.seal()
        first = left.content_hash()
        # Sabotage the live list *behind the seal's back*: a sealed source
        # promises immutability, so the hash must come from the cached state
        # without sweeping (an unsealed source would detect this change).
        records = list.__len__(left.records)
        assert left.content_hash() == first
        assert list.__len__(left.records) == records

    def test_sealed_and_unsealed_hashes_are_byte_identical(self):
        sealed_left, _ = toy_sources()
        plain_left, _ = toy_sources()
        sealed_left.seal()
        assert sealed_left.content_hash() == plain_left.content_hash()

    def test_content_state_shares_the_validated_snapshot(self, sources):
        left, _ = sources
        hash_one, snapshot_one = left.content_state()
        hash_two, snapshot_two = left.content_state()
        assert hash_one == hash_two
        assert snapshot_one is snapshot_two  # no re-sweep, no re-copy
        left.add(make_record("L9", "new", "new thing", "1.0"))
        hash_three, snapshot_three = left.content_state()
        assert hash_three != hash_one
        assert snapshot_three is not snapshot_one

    def test_sealed_content_state_is_the_live_list(self, sources):
        """A sealed source's snapshot IS its record list — immutability makes
        the defensive copy pointless, which is what makes sealing O(1)."""
        left, _ = sources
        left.seal()
        _, snapshot = left.content_state()
        assert snapshot is left.records

    def test_unsealed_content_state_is_a_defensive_copy(self, sources):
        left, _ = sources
        _, snapshot = left.content_state()
        assert snapshot is not left.records
        assert snapshot == left.records
