"""Tests for repro.data.table.DataSource."""

from __future__ import annotations

import random

import pytest

from repro.data.records import Record, Schema
from repro.data.table import DataSource
from repro.exceptions import DatasetError, SchemaError

from tests.helpers import LEFT_SCHEMA, make_record


class TestDataSourceConstruction:
    def test_records_are_indexed_by_id(self, sources):
        left, _ = sources
        assert left.get("L0").value("name").startswith("sony")

    def test_duplicate_ids_rejected(self):
        records = [make_record("L0", "a", "b", "1"), make_record("L0", "c", "d", "2")]
        with pytest.raises(DatasetError):
            DataSource(name="dup", schema=LEFT_SCHEMA, records=records)

    def test_schema_mismatch_rejected(self):
        schema = Schema.from_names(["only"])
        bad = Record.from_raw("x", {"only": "value"}, schema)
        with pytest.raises(SchemaError):
            DataSource(name="bad", schema=LEFT_SCHEMA, records=[bad])

    def test_len_and_iteration(self, sources):
        left, _ = sources
        assert len(left) == 6
        assert len(list(left)) == 6

    def test_contains_by_id(self, sources):
        left, _ = sources
        assert "L0" in left
        assert "missing" not in left


class TestDataSourceOperations:
    def test_add_validates_schema(self, sources):
        left, _ = sources
        schema = Schema.from_names(["only"])
        with pytest.raises(SchemaError):
            left.add(Record.from_raw("new", {"only": "v"}, schema))

    def test_add_rejects_duplicate_id(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError):
            left.add(make_record("L0", "a", "b", "1"))

    def test_add_appends(self, sources):
        left, _ = sources
        left.add(make_record("L99", "new product", "new description", "5"))
        assert "L99" in left
        assert len(left) == 7

    def test_get_unknown_raises(self, sources):
        left, _ = sources
        with pytest.raises(DatasetError):
            left.get("does-not-exist")

    def test_ids_order(self, sources):
        left, _ = sources
        assert left.ids()[:3] == ["L0", "L1", "L2"]

    def test_sample_respects_exclusions(self, sources):
        left, _ = sources
        sampled = left.sample(10, rng=random.Random(0), exclude=["L0"])
        assert all(record.record_id != "L0" for record in sampled)

    def test_sample_caps_at_population(self, sources):
        left, _ = sources
        assert len(left.sample(100)) == len(left)

    def test_sample_is_deterministic_given_rng(self, sources):
        left, _ = sources
        first = [r.record_id for r in left.sample(3, rng=random.Random(42))]
        second = [r.record_id for r in left.sample(3, rng=random.Random(42))]
        assert first == second

    def test_filter_returns_new_source(self, sources):
        left, _ = sources
        filtered = left.filter(lambda record: "sony" in record.value("name"))
        assert len(filtered) == 1
        assert len(left) == 6

    def test_vocabulary_whole_source(self, sources):
        left, _ = sources
        vocabulary = left.vocabulary()
        assert "sony" in vocabulary
        assert "bose" in vocabulary

    def test_vocabulary_single_attribute(self, sources):
        left, _ = sources
        vocabulary = left.vocabulary("price")
        assert "199.99" in vocabulary
        assert "sony" not in vocabulary

    def test_distinct_values_excludes_missing(self):
        records = [
            make_record("a", "sony", "", "1"),
            make_record("b", "sony", "desc", "2"),
        ]
        source = DataSource(name="s", schema=LEFT_SCHEMA, records=records)
        assert source.distinct_values("description") == ["desc"]
        assert source.distinct_values("name") == ["sony"]

    def test_value_statistics_shape(self, sources):
        left, _ = sources
        stats = left.value_statistics()
        assert set(stats) == set(LEFT_SCHEMA.attributes)
        for attribute_stats in stats.values():
            assert 0.0 <= attribute_stats["missing_rate"] <= 1.0
            assert attribute_stats["distinct"] >= 0

    def test_from_rows_generates_ids(self):
        schema = Schema.from_names(["name"])
        source = DataSource.from_rows("rows", schema, [{"name": "a"}, {"name": "b"}])
        assert source.ids() == ["rows-0", "rows-1"]

    def test_from_rows_with_id_attribute(self):
        schema = Schema.from_names(["name"])
        source = DataSource.from_rows(
            "rows", schema, [{"id": "x1", "name": "a"}], id_attribute="id"
        )
        assert source.ids() == ["x1"]
