"""Tests for the counterfactual baselines: DiCE, LIME-C, SHAP-C (SEDC)."""

from __future__ import annotations

import pytest

from repro.explain.dice import DiceExplainer
from repro.explain.lime import LimeExplainer
from repro.explain.sedc import LimeCExplainer, SedcCounterfactualExplainer, ShapCExplainer

from tests.helpers import SimilarityModel


class TestDice:
    @pytest.fixture()
    def explainer(self, similarity_model, sources):
        left, right = sources
        return DiceExplainer(similarity_model, left, right, total_candidates=80, seed=0)

    def test_examples_flip_the_prediction(self, explainer, match_pair):
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.examples  # similarity model is easy to flip
        assert all(example.flipped for example in explanation.examples)

    def test_non_match_can_be_flipped_to_match(self, explainer, non_match_pair):
        explanation = explainer.explain_counterfactual(non_match_pair)
        for example in explanation.examples:
            assert example.score > 0.5

    def test_examples_respect_max_count(self, similarity_model, sources, match_pair):
        left, right = sources
        explainer = DiceExplainer(similarity_model, left, right, total_candidates=80, max_examples=2, seed=0)
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.count() <= 2

    def test_changed_attributes_are_recorded(self, explainer, match_pair):
        explanation = explainer.explain_counterfactual(match_pair)
        for example in explanation.examples:
            assert example.changed_attributes
            original_flat = match_pair.as_flat_dict()
            perturbed_flat = example.pair.as_flat_dict()
            truly_changed = {
                name for name in original_flat if original_flat[name] != perturbed_flat[name]
            }
            assert truly_changed <= set(example.changed_attributes)

    def test_deterministic_given_seed(self, similarity_model, sources, match_pair):
        left, right = sources
        first = DiceExplainer(similarity_model, left, right, total_candidates=40, seed=3)
        second = DiceExplainer(similarity_model, left, right, total_candidates=40, seed=3)
        assert (
            first.explain_counterfactual(match_pair).count()
            == second.explain_counterfactual(match_pair).count()
        )

    def test_prediction_recorded(self, explainer, match_pair, similarity_model):
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.prediction == pytest.approx(similarity_model.predict_pair(match_pair))


class TestSedcFamily:
    def test_sedc_flips_match_by_dropping(self, similarity_model, match_pair):
        explainer = SedcCounterfactualExplainer(
            similarity_model, LimeExplainer(similarity_model, n_samples=40, seed=0)
        )
        explanation = explainer.explain_counterfactual(match_pair)
        # Dropping enough of a match's content must eventually flip it.
        assert explanation.examples
        assert all(example.flipped for example in explanation.examples)

    def test_attribute_set_is_prefix_of_ranking(self, similarity_model, match_pair):
        explainer = LimeCExplainer(similarity_model, n_samples=40, seed=0)
        explanation = explainer.explain_counterfactual(match_pair)
        if explanation.attribute_set:
            assert len(explanation.attribute_set) <= 6

    def test_limec_and_shapc_method_names(self, similarity_model, match_pair):
        assert LimeCExplainer(similarity_model, n_samples=20).method_name == "lime-c"
        assert ShapCExplainer(similarity_model, max_coalitions=32).method_name == "shap-c"

    def test_constant_model_yields_no_examples(self, constant_model, match_pair):
        explainer = LimeCExplainer(constant_model, n_samples=20, seed=0)
        explanation = explainer.explain_counterfactual(explanation_pair := match_pair)
        assert explanation.examples == []
        assert explanation.sufficiency == 0.0

    def test_collect_intermediate_false_stops_at_first_flip(self, similarity_model, match_pair):
        explainer = SedcCounterfactualExplainer(
            similarity_model,
            LimeExplainer(similarity_model, n_samples=40, seed=0),
            collect_intermediate=False,
        )
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.count() <= 1

    def test_max_attributes_limits_search(self, similarity_model, match_pair):
        explainer = SedcCounterfactualExplainer(
            similarity_model,
            LimeExplainer(similarity_model, n_samples=40, seed=0),
            max_attributes=1,
        )
        explanation = explainer.explain_counterfactual(match_pair)
        assert explanation.metadata["attributes_tried"] <= 1
