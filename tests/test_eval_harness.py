"""Integration tests for the experiment harness (tiny configurations)."""

from __future__ import annotations

import os

import pytest

from repro.eval.harness import (
    COUNTERFACTUAL_METHODS,
    ExperimentHarness,
    HarnessConfig,
    SALIENCY_METHODS,
    default_config,
    full_config,
)

TINY = HarnessConfig(
    datasets=("BA",),
    models=("classical",),
    dataset_scale=0.4,
    pairs_per_dataset=4,
    num_triangles=8,
    lime_samples=16,
    shap_coalitions=16,
    dice_candidates=20,
    fast_models=True,
    seed=3,
)


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(TINY)


class TestConfig:
    def test_default_config_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        config = default_config()
        assert config.num_triangles < 100

    def test_full_config_enabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        config = default_config()
        assert len(config.datasets) == 12
        assert config.num_triangles == 100

    def test_with_overrides(self):
        assert TINY.with_overrides(num_triangles=99).num_triangles == 99

    def test_full_config_covers_all_datasets(self):
        assert len(full_config().datasets) == 12


class TestHarnessCaching:
    def test_dataset_is_cached(self, harness):
        assert harness.dataset("BA") is harness.dataset("BA")

    def test_trained_model_is_cached(self, harness):
        assert harness.trained("classical", "BA") is harness.trained("classical", "BA")

    def test_sample_pairs_is_balanced_and_bounded(self, harness):
        pairs = harness.sample_pairs("BA")
        assert len(pairs) <= TINY.pairs_per_dataset
        assert all(pair.label is not None for pair in pairs)


class TestExplainerFactories:
    def test_saliency_explainers_cover_paper_methods(self, harness):
        model = harness.trained("classical", "BA").model
        explainers = harness.saliency_explainers(model, "BA")
        assert set(explainers) == set(SALIENCY_METHODS)

    def test_counterfactual_explainers_cover_paper_methods(self, harness):
        model = harness.trained("classical", "BA").model
        explainers = harness.counterfactual_explainers(model, "BA")
        assert set(explainers) == set(COUNTERFACTUAL_METHODS)

    def test_unknown_method_names_rejected(self, harness):
        from repro.exceptions import EvaluationError

        model = harness.trained("classical", "BA").model
        with pytest.raises(EvaluationError, match="unknown saliency method"):
            harness.saliency_explainer(model, "BA", "gradient")
        with pytest.raises(EvaluationError, match="unknown counterfactual method"):
            harness.counterfactual_explainer(model, "BA", "gradient")


class TestUnitGenerators:
    def test_saliency_units_cover_the_grid(self, harness):
        units = harness.saliency_units(datasets=("BA",), models=("classical",), methods=("certa", "shap"))
        assert [(unit.dataset, unit.model, unit.method) for unit in sorted(units)] == [
            ("BA", "classical", "certa"), ("BA", "classical", "shap"),
        ]
        assert all(unit.experiment == "saliency" for unit in units)

    def test_triangle_sweep_units_carry_tau_and_models(self, harness):
        units = harness.triangle_sweep_units(triangle_counts=(4, 8), datasets=("BA",), models=("classical",))
        assert [unit.index for unit in sorted(units)] == [4, 8]
        assert all(unit.param("models") == ("classical",) for unit in units)

    def test_sweep_records_the_last_result(self, harness):
        rows = harness.saliency_rows(methods=("certa",))
        assert harness.last_sweep is not None
        assert harness.last_sweep.rows == rows
        assert harness.last_sweep.manifest()["experiments"] == ["saliency"]


class TestExperiments:
    def test_saliency_rows_structure(self, harness):
        rows = harness.saliency_rows(methods=("certa", "shap"))
        assert rows
        for row in rows:
            assert 0.0 <= row["faithfulness"] <= 1.0
            assert row["confidence_indication"] >= 0.0
            assert row["method"] in ("certa", "shap")
            assert isinstance(row["skipped"], int) and row["skipped"] >= 0

    def test_counterfactual_rows_structure(self, harness):
        rows = harness.counterfactual_rows(methods=("certa", "lime-c"))
        assert rows
        for row in rows:
            for metric in ("proximity", "sparsity", "diversity", "count"):
                assert row[metric] >= 0.0
            assert row["skipped"] >= 0

    def test_triangle_sweep_rows(self, harness):
        rows = harness.triangle_sweep_rows(
            triangle_counts=(4, 8), datasets=("BA",), models=("classical",), pairs_per_dataset=2
        )
        assert {row["triangles"] for row in rows} == {4, 8}
        for row in rows:
            assert 0.0 <= row["probability_of_necessity"] <= 1.0
            assert 0.0 <= row["probability_of_sufficiency"] <= 1.0

    def test_monotonicity_rows(self, harness):
        rows = harness.monotonicity_rows(datasets=("BA",), model_name="classical", pairs_per_dataset=1, triangles_per_pair=2)
        assert rows
        row = rows[0]
        assert row["attributes"] == 4
        assert row["expected"] == 14
        assert row["performed"] <= row["expected"]
        assert 0.0 <= row["error_rate"] <= 1.0

    def test_prediction_engine_rows(self, harness):
        rows = harness.prediction_engine_rows(
            datasets=("BA",), model_name="classical", pairs_per_dataset=2
        )
        assert rows
        for row in rows:
            assert row["identical"]
            assert row["hits"] + row["misses"] == row["requests"]
            assert row["lattice_batches"] <= row["sequential_calls"]
            if row["nodes_evaluated"]:
                assert row["lattice_batches"] <= row["nodes_evaluated"]
            # Featurisation-layer counters ride along with the engine stats.
            assert row["rows_built"] > 0
            assert 0.0 <= row["value_hit_rate"] <= 1.0
            assert 0.0 <= row["comparison_hit_rate"] <= 1.0

    def test_augmentation_supply_rows(self, harness):
        rows = harness.augmentation_supply_rows(
            datasets=("BA",), models=("classical",), target_triangles=20, pairs_per_dataset=1
        )
        assert rows
        assert rows[0]["classical"] <= 20

    def test_case_study_rows(self, harness):
        rows = harness.case_study_rows(code="BA", model_name="classical", max_pairs=1, methods=("certa", "shap"))
        assert rows
        for row in rows:
            assert 0.0 <= row["alignment_top2"] <= 1.0
            assert row["aggr@1"] >= 0.0
