"""Tests for repro.data.synthetic: entity generators and dataset generation."""

from __future__ import annotations

import random

import pytest

from repro.data.records import MISSING_VALUE
from repro.data.synthetic import (
    ENTITY_GENERATORS,
    SyntheticConfig,
    ViewSpec,
    beer_views,
    bibliographic_views,
    generate_dataset,
    music_views,
    product_views,
    render_view,
    restaurant_views,
)
from repro.exceptions import DatasetError


class TestEntityGenerators:
    @pytest.mark.parametrize("domain", sorted(ENTITY_GENERATORS))
    def test_generators_produce_non_empty_entities(self, domain):
        rng = random.Random(0)
        entity = ENTITY_GENERATORS[domain](rng, 0)
        assert entity
        assert all(isinstance(value, str) and value for value in entity.values())

    def test_product_entity_has_expected_fields(self):
        entity = ENTITY_GENERATORS["product"](random.Random(1), 0)
        assert {"name", "description", "price", "manufacturer"} <= set(entity)

    def test_bibliographic_entity_has_expected_fields(self):
        entity = ENTITY_GENERATORS["bibliographic"](random.Random(1), 0)
        assert set(entity) == {"title", "authors", "venue", "year"}


class TestViews:
    def test_render_view_respects_schema(self):
        left_view, _ = product_views(attributes=3)
        entity = ENTITY_GENERATORS["product"](random.Random(2), 0)
        record = render_view(entity, left_view, "X0", random.Random(2))
        assert record.attribute_names() == left_view.schema.attributes

    def test_zero_noise_zero_missing_preserves_content(self):
        view = ViewSpec(source_tag="U", attribute_map={"name": ("name",)}, noise=0.0, missing_rate=0.0)
        entity = {"name": "sony bravia theater"}
        record = render_view(entity, view, "X0", random.Random(3))
        assert record.value("name") == "sony bravia theater"

    def test_full_missing_rate_blanks_everything(self):
        view = ViewSpec(source_tag="U", attribute_map={"name": ("name",)}, noise=0.0, missing_rate=1.0)
        record = render_view({"name": "sony"}, view, "X0", random.Random(3))
        assert record.value("name") == MISSING_VALUE

    @pytest.mark.parametrize(
        "factory, width",
        [(beer_views, 4), (restaurant_views, 6), (music_views, 8), (bibliographic_views, 4)],
    )
    def test_view_factories_have_expected_width(self, factory, width):
        left_view, right_view = factory()
        assert len(left_view.schema) == width
        assert len(right_view.schema) == width

    def test_product_views_reject_unknown_width(self):
        with pytest.raises(DatasetError):
            product_views(attributes=7)


class TestGenerateDataset:
    @pytest.fixture(scope="class")
    def config(self):
        left_view, right_view = product_views(attributes=3)
        return SyntheticConfig(
            name="TEST", domain="product", left_view=left_view, right_view=right_view,
            entities=40, shared_fraction=0.5, extra_left=10, extra_right=10, seed=9,
        )

    def test_generation_is_deterministic(self, config):
        first = generate_dataset(config)
        second = generate_dataset(config)
        assert [r.values for r in first.left] == [r.values for r in second.left]
        assert [p.pair_id for p in first.train] == [p.pair_id for p in second.train]

    def test_match_count_matches_shared_entities(self, config):
        dataset = generate_dataset(config)
        assert len(dataset.matches()) == int(config.entities * config.shared_fraction)

    def test_sources_have_expected_sizes(self, config):
        dataset = generate_dataset(config)
        shared = int(config.entities * config.shared_fraction)
        assert len(dataset.left) == shared + config.extra_left
        assert len(dataset.right) == shared + config.extra_right

    def test_matching_pairs_share_vocabulary(self, config):
        dataset = generate_dataset(config)
        match = dataset.matches()[0]
        left_tokens = set(match.left.as_text().split())
        right_tokens = set(match.right.as_text().split())
        assert left_tokens & right_tokens

    def test_unknown_domain_rejected(self, config):
        bad = SyntheticConfig(
            name="BAD", domain="unknown", left_view=config.left_view, right_view=config.right_view
        )
        with pytest.raises(DatasetError):
            generate_dataset(bad)

    def test_scaled_config_shrinks_entities(self, config):
        scaled = config.scaled(0.5)
        assert scaled.entities == 20
        assert scaled.entities < config.entities

    def test_different_seeds_give_different_data(self, config):
        other = SyntheticConfig(
            name="TEST2", domain="product", left_view=config.left_view, right_view=config.right_view,
            entities=40, shared_fraction=0.5, extra_left=10, extra_right=10, seed=10,
        )
        first = generate_dataset(config)
        second = generate_dataset(other)
        assert [r.values for r in first.left] != [r.values for r in second.left]
