"""Shared test helpers: tiny hand-built datasets and cheap deterministic matchers.

The unit tests for explainers and metrics do not need a trained neural matcher:
any object exposing the :class:`repro.models.base.ERModel` prediction API will
do.  :class:`SimilarityModel` scores pairs by token overlap, which is fast,
deterministic and (usefully for lattice tests) monotone in content overlap.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ERDataset, PairSplit
from repro.data.records import Record, RecordPair, Schema
from repro.data.table import DataSource
from repro.text.similarity import jaccard
from repro.text.tokenize import tokenize

LEFT_SCHEMA = Schema.from_names(["name", "description", "price"])
RIGHT_SCHEMA = Schema.from_names(["name", "description", "price"])


def make_record(record_id: str, name: str, description: str, price: str, source: str = "U") -> Record:
    """Build a product record for the toy schema."""
    schema = LEFT_SCHEMA if source == "U" else RIGHT_SCHEMA
    return Record.from_raw(
        record_id,
        {"name": name, "description": description, "price": price},
        schema,
        source=source,
    )


def toy_sources() -> tuple[DataSource, DataSource]:
    """Two tiny product tables with four shared entities and a few extras."""
    left_records = [
        make_record("L0", "sony bravia theater", "sony bravia micro system black", "199.99"),
        make_record("L1", "altec lansing inmotion", "altec portable audio system", "89.99"),
        make_record("L2", "canon powershot camera", "canon digital camera silver", "349.00"),
        make_record("L3", "bose soundlink speaker", "bose portable bluetooth speaker", "129.00"),
        make_record("L4", "garmin nuvi gps", "garmin portable gps navigator", "159.00"),
        make_record("L5", "philips dvd player", "philips progressive scan dvd player", "59.00"),
    ]
    right_records = [
        make_record("R0", "sony bravia theater system", "sony bravia home theater black micro", "205.00", "V"),
        make_record("R1", "altec lansing im600", "altec lansing inmotion portable audio", "92.50", "V"),
        make_record("R2", "canon powershot", "canon powershot digital camera", "355.00", "V"),
        make_record("R3", "bose soundlink", "bose soundlink bluetooth speaker portable", "125.00", "V"),
        make_record("R4", "netgear wireless router", "netgear dual band wireless router", "79.00", "V"),
        make_record("R5", "epson photo printer", "epson compact photo printer", "99.00", "V"),
    ]
    left = DataSource(name="toy-left", schema=LEFT_SCHEMA, records=left_records)
    right = DataSource(name="toy-right", schema=RIGHT_SCHEMA, records=right_records)
    return left, right


def toy_pairs(left: DataSource, right: DataSource) -> list[RecordPair]:
    """Labelled pairs over the toy sources: 4 matches and 6 non-matches."""
    matches = [("L0", "R0"), ("L1", "R1"), ("L2", "R2"), ("L3", "R3")]
    non_matches = [
        ("L0", "R1"), ("L1", "R0"), ("L2", "R3"), ("L3", "R2"), ("L4", "R4"), ("L5", "R5"),
    ]
    pairs = [RecordPair(left.get(a), right.get(b), True) for a, b in matches]
    pairs.extend(RecordPair(left.get(a), right.get(b), False) for a, b in non_matches)
    return pairs


def toy_dataset() -> ERDataset:
    """A complete toy dataset with fixed train/valid/test splits."""
    left, right = toy_sources()
    pairs = toy_pairs(left, right)
    train = PairSplit("train", pairs[:6])
    valid = PairSplit("valid", pairs[6:8])
    test = PairSplit("test", pairs[8:])
    return ERDataset(
        name="TOY", left=left, right=right, train=train, valid=valid, test=test,
        description="hand-built toy dataset for unit tests",
    )


class SimilarityModel:
    """A deterministic matcher scoring pairs by token Jaccard similarity.

    Implements the prediction subset of the :class:`ERModel` API that the
    explainers rely on.  ``threshold`` controls where the match decision falls;
    the score is a squashed version of the record-level Jaccard similarity, so
    copying tokens from a similar record monotonically raises the score.
    """

    name = "similarity"

    def __init__(self, threshold: float = 0.5, sharpness: float = 6.0) -> None:
        self.threshold = threshold
        self.sharpness = sharpness
        self.calls = 0

    def _score(self, pair: RecordPair) -> float:
        overlap = jaccard(tokenize(pair.left.as_text()), tokenize(pair.right.as_text()))
        # Squash around 0.3 overlap so that clearly-different records sit near 0
        # and near-duplicates sit near 1.
        return float(1.0 / (1.0 + np.exp(-self.sharpness * (overlap - 0.3))))

    def predict_proba(self, pairs) -> np.ndarray:
        self.calls += len(pairs)
        return np.array([self._score(pair) for pair in pairs], dtype=np.float64)

    def predict_pair(self, pair: RecordPair) -> float:
        return float(self.predict_proba([pair])[0])

    def predict(self, pairs) -> np.ndarray:
        return self.predict_proba(pairs) > self.threshold

    def predict_match(self, pair: RecordPair) -> bool:
        return self.predict_pair(pair) > self.threshold


class ConstantModel:
    """A matcher that always returns the same score (edge-case testing)."""

    name = "constant"

    def __init__(self, score: float = 0.9) -> None:
        self.score = score

    def predict_proba(self, pairs) -> np.ndarray:
        return np.full(len(pairs), self.score, dtype=np.float64)

    def predict_pair(self, pair: RecordPair) -> float:
        return self.score

    def predict(self, pairs) -> np.ndarray:
        return self.predict_proba(pairs) > 0.5

    def predict_match(self, pair: RecordPair) -> bool:
        return self.score > 0.5
