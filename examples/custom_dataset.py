"""Using the library on your own data: CSV round-trip, training and explaining.

The DeepMatcher benchmark layout (``tableA.csv``, ``tableB.csv``,
``train/valid/test.csv``) is the on-disk format the original CERTA evaluation
used.  This example writes a small product dataset in that layout, loads it
back with :func:`repro.data.load_dataset`, trains a matcher, persists it, and
explains a prediction — the full workflow a downstream user would follow with
their own data.

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.certa import CertaExplainer
from repro.data import load_benchmark, load_dataset, save_dataset
from repro.models import load_model, save_model, train_model


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-custom-"))

    # 1. Materialise a dataset on disk in the DeepMatcher benchmark layout.
    #    (Here we export one of the synthetic benchmarks; with real data you
    #    would simply place your own CSV files in the same layout.)
    dataset_dir = save_dataset(load_benchmark("FZ", scale=0.5), workdir / "fodors-zagats")
    print(f"dataset written to {dataset_dir}")
    for name in sorted(path.name for path in dataset_dir.iterdir()):
        print(f"  {name}")

    # 2. Load it back as if it were user-provided data.
    dataset = load_dataset(dataset_dir)
    print(f"\nloaded {dataset.name}: {len(dataset.left)} x {len(dataset.right)} records, "
          f"{len(dataset.train)} train / {len(dataset.test)} test pairs")

    # 3. Train and persist a matcher.
    trained = train_model("deepmatcher", dataset, fast=True)
    model_dir = save_model(trained.model, workdir / "matcher")
    print(f"trained deepmatcher (test F1 = {trained.test_metrics['f1']:.3f}), saved to {model_dir}")

    # 4. Reload the matcher and explain one of its predictions with CERTA.
    matcher = load_model(model_dir)
    explainer = CertaExplainer(matcher, dataset.left, dataset.right, num_triangles=20, seed=4)
    pair = dataset.test.positives()[0]
    explanation = explainer.explain_full(pair)

    print("\nexplained pair:")
    print("  left :", dict(pair.left.values))
    print("  right:", dict(pair.right.values))
    print(f"  score = {explanation.prediction:.3f}")
    print("  top-3 salient attributes:", explanation.saliency.top_attributes(3))
    print("  golden counterfactual set:", explanation.counterfactual.attribute_set)


if __name__ == "__main__":
    main()
