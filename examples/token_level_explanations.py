"""Token-level drill-down: the paper's future-work extension, implemented.

After CERTA identifies the most salient *attributes*, the token-level extension
(:mod:`repro.certa.tokens`) reuses the same open triangles to score individual
tokens inside one attribute: a token's saliency is the fraction of evaluated
replacements containing it that flipped the matcher's prediction.

Run with::

    python examples/token_level_explanations.py
"""

from __future__ import annotations

from repro.certa import CertaExplainer, find_open_triangles, token_saliency
from repro.data import load_benchmark
from repro.models import train_model


def main() -> None:
    dataset = load_benchmark("AB", scale=0.5)
    trained = train_model("deepmatcher", dataset, fast=True)
    model = trained.model
    print(f"deepmatcher on AB: test F1 = {trained.test_metrics['f1']:.3f}")

    pair = dataset.test.positives()[0]
    print("\nleft :", dict(pair.left.values))
    print("right:", dict(pair.right.values))
    print(f"matching score = {model.predict_pair(pair):.3f}")

    # Attribute-level explanation first.
    explainer = CertaExplainer(model, dataset.left, dataset.right, num_triangles=30, seed=3)
    explanation = explainer.explain_full(pair)
    ranked = explanation.saliency.ranked()
    print("\nattribute saliency:")
    for name, score in ranked:
        print(f"  {name:<24} {score:.3f}")

    # Token-level drill-down into the two most salient attributes.
    search = find_open_triangles(model, pair, dataset.left, dataset.right, count=30, seed=3)
    for attribute_name, _ in ranked[:2]:
        saliency = token_saliency(model, pair, attribute_name, search.triangles)
        if not saliency.tokens:
            print(f"\n{attribute_name}: (empty value, nothing to drill into)")
            continue
        print(f"\ntoken saliency inside {attribute_name}:")
        for token, score in saliency.ranked():
            bar = "#" * int(round(score * 20))
            print(f"  {token:<20} {score:.2f} {bar}")


if __name__ == "__main__":
    main()
