"""Prediction engine statistics: what batching and caching save per explanation.

Run with::

    python examples/prediction_engine_stats.py

The script explains the same prediction twice — once with frontier-batched
lattice exploration (the default) and once with the sequential reference path
— and prints the engine counters (requests, cache hits/misses, model
invocations) for both, showing where the speedup of the
:class:`repro.models.PredictionEngine` comes from.  The two explanations are
asserted identical, the guarantee the equivalence test suite covers.
"""

from __future__ import annotations

from repro.certa import CertaExplainer
from repro.data import load_benchmark
from repro.models import PredictionEngine, train_model


def main() -> None:
    # 1. Dataset + matcher, as in the quickstart.
    dataset = load_benchmark("AB", scale=0.5)
    trained = train_model("deepmatcher", dataset, fast=True)
    model = trained.model
    pair = dataset.test.positives()[0]

    # 2. Explain with frontier batching (the default) and sequentially.
    explanations = {}
    for label, batched in (("batched", True), ("sequential", False)):
        model.clear_cache()  # cold caches so the counters are comparable
        model.clear_featurizer_cache()
        engine = PredictionEngine(model, batch_size=256)
        explainer = CertaExplainer(
            model, dataset.left, dataset.right,
            num_triangles=20, seed=0, engine=engine, batched=batched,
        )
        explanations[label] = explainer.explain_full(pair)

    batched, sequential = explanations["batched"], explanations["sequential"]
    assert batched.saliency.scores == sequential.saliency.scores
    assert batched.counterfactual.attribute_set == sequential.counterfactual.attribute_set

    # 3. Compare the engine counters.
    print(f"explained pair with {batched.triangles_used} open triangles; "
          f"{batched.performed_predictions()} lattice nodes evaluated, "
          f"{batched.saved_predictions()} saved by monotonicity\n")
    print(f"{'counter':<14} {'batched':>10} {'sequential':>12}")
    for counter in ("requests", "hits", "misses", "batches", "max_batch"):
        batched_value = getattr(batched.engine_stats, counter)
        sequential_value = getattr(sequential.engine_stats, counter)
        print(f"{counter:<14} {batched_value:>10} {sequential_value:>12}")

    print(f"\nlattice exploration cost {batched.lattice_batches()} model invocations "
          f"batched vs {sequential.lattice_batches()} sequential "
          f"({batched.performed_predictions()} nodes either way) — "
          f"identical explanations, "
          f"{sequential.lattice_batches() / max(batched.lattice_batches(), 1):.1f}x fewer calls")

    # 4. The layer below: featurisation-cache traffic for the batched run.
    featurizer = batched.featurizer_stats
    if featurizer is not None:
        print(f"\nfeaturisation layer: {featurizer.rows_built} rows built, "
              f"value cache {featurizer.value_hit_rate:.0%} hits, "
              f"comparison cache {featurizer.comparison_hit_rate:.0%} hits")

    # 5. The layer before any model call: the support-candidate index.
    index = batched.index_stats
    if index is not None:
        print(f"candidate index: {index.builds} builds, {index.queries} queries, "
              f"{index.postings_visited} postings visited, "
              f"{index.candidates_pruned} candidates pruned")


if __name__ == "__main__":
    main()
