"""Artifact store demo: persist indexes and matchers, warm-load them back.

Run with::

    python examples/artifact_store_demo.py

A CERTA sweep pays a per-process warm-up before the first explanation: the
support-candidate index of every source is built, matchers are trained and
the featurisation caches fill.  The artifact store persists each of those
structures to disk keyed by a **content hash** of exactly what it was derived
from, so the *next* process warm-loads everything it can prove unchanged.
This script walks the whole lifecycle in one process:

1. save a dataset together with its source indexes (``save_dataset`` with an
   ``artifact_store``);
2. reload it as a "fresh process" would and show the index coming from disk
   (``loads`` vs ``builds`` counters) while ranking identically to a scan;
3. train a matcher through a store-backed ``ModelCache``, then rebuild the
   cache and show the matcher loading instead of retraining, scores
   byte-identical;
4. mutate a source through the lifecycle API (``update`` / ``remove``) and
   show the content hash invalidating the persisted index — a rebuild, never
   a stale answer.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.data.artifacts import ArtifactStore
from repro.data.blocking import top_k_neighbours
from repro.data.indexing import get_source_index
from repro.data.io import load_dataset, save_dataset
from repro.data.registry import load_benchmark
from repro.models.training import ModelCache


def main() -> None:
    with tempfile.TemporaryDirectory() as tempdir:
        store = ArtifactStore(Path(tempdir) / "artifacts")
        dataset = load_benchmark("AB", scale=0.5)

        # -- 1. persist the dataset plus its derived indexes -----------------
        dataset_dir = Path(tempdir) / "dataset"
        save_dataset(dataset, dataset_dir, artifact_store=store)
        print(f"saved dataset + indexes: {store.stats.index_saves} index artifacts")

        # -- 2. a "fresh process" warm-loads instead of rebuilding ------------
        reloaded = load_dataset(dataset_dir, artifact_store=store)
        index = get_source_index(reloaded.left, 2)
        query = reloaded.right.records[0]
        start = time.perf_counter()
        warm = [r.record_id for r in index.top_k(query, k=5)]
        elapsed = time.perf_counter() - start
        scan = [
            r.record_id
            for r in top_k_neighbours(query, list(reloaded.left), k=5, indexed=False)
        ]
        assert warm == scan, "warm-loaded ranking must equal the scan reference"
        print(
            f"warm index: builds={index.builds} loads={index.loads} "
            f"first query {elapsed * 1000:.1f} ms, ranking == scan: {warm == scan}"
        )

        # -- 3. matcher weights: train once, load forever ---------------------
        start = time.perf_counter()
        trained = ModelCache(fast=True, artifact_store=store).get("deepmatcher", dataset)
        train_seconds = time.perf_counter() - start
        start = time.perf_counter()
        loaded = ModelCache(fast=True, artifact_store=store).get("deepmatcher", dataset)
        load_seconds = time.perf_counter() - start
        sample = dataset.test.pairs[:8]
        identical = (
            trained.model.predict_proba(sample).tolist()
            == loaded.model.predict_proba(sample).tolist()
        )
        print(
            f"matcher: trained in {train_seconds:.2f}s, loaded in {load_seconds * 1000:.0f} ms, "
            f"scores identical: {identical}"
        )

        # -- 4. lifecycle mutations invalidate by content ---------------------
        victim = reloaded.left.records[0]
        reloaded.left.update(
            victim.replace_values({reloaded.left.schema.attributes[0]: "renamed entity"}, suffix="")
        )
        refreshed = [r.record_id for r in index.top_k(query, k=5)]
        rescan = [
            r.record_id
            for r in top_k_neighbours(query, list(reloaded.left), k=5, indexed=False)
        ]
        assert refreshed == rescan
        print(
            f"after update(): builds={index.builds} loads={index.loads} "
            f"(content hash moved, the stale artifact was not reused)"
        )
        reloaded.left.remove(reloaded.left.records[-1].record_id)
        assert [r.record_id for r in index.top_k(query, k=5)] == [
            r.record_id
            for r in top_k_neighbours(query, list(reloaded.left), k=5, indexed=False)
        ]
        print(f"after remove(): builds={index.builds} — every answer tracked the live data")
        print(f"store counters: {store.stats.as_dict()}")


if __name__ == "__main__":
    main()
