"""Debugging misclassifications: the scenario of Figures 2-4 of the paper.

Three DL matchers are trained on the same dataset; the script finds test pairs
that at least one matcher gets wrong, explains those predictions with CERTA and
the saliency baselines, and then performs the paper's "faithfulness inspection"
(Figure 4): the attributes flagged by each explanation are copied from one
record to the other, and the resulting change in matching score shows how
faithful each explanation is to the matcher's behaviour.

Dataset loading, matcher training and explainer construction all go through
:class:`repro.eval.ExperimentHarness` — the same factories the sweep runner's
work units use — so the example stays in sync with how the benchmark tables
are produced.

Run with::

    python examples/explain_misclassifications.py
"""

from __future__ import annotations

from repro.eval import ExperimentHarness, HarnessConfig, SALIENCY_METHODS
from repro.explain import perturb_pair

DATASET_CODE = "AG"
MODEL_NAMES = ("deeper", "deepmatcher", "ditto")
MAX_CASES = 3

CONFIG = HarnessConfig(
    datasets=(DATASET_CODE,),
    models=MODEL_NAMES,
    dataset_scale=0.5,
    num_triangles=20,
    lime_samples=64,
    shap_coalitions=64,
    fast_models=True,
    seed=1,
)


def inspect_faithfulness(model, pair, explanation, top_k: int = 2) -> float:
    """Figure 4: copy the top-k salient attributes across the pair and re-score.

    For a non-match prediction, copying the most influential attribute values
    from the other record should *raise* the matching score if the explanation
    is faithful; for a match prediction it should lower it when values are
    dropped, but we follow the paper and use the copy operation.
    """
    top_attributes = explanation.top_attributes(top_k)
    perturbed = perturb_pair(pair, top_attributes, operator="copy")
    return float(model.predict_pair(perturbed))


def main() -> None:
    harness = ExperimentHarness(CONFIG)
    dataset = harness.dataset(DATASET_CODE)
    trained = {name: harness.trained(name, DATASET_CODE) for name in MODEL_NAMES}
    for name, result in trained.items():
        print(f"{name:<12} test F1 = {result.test_metrics['f1']:.3f}")

    # Find test pairs that at least one matcher misclassifies (Figure 2).
    cases = []
    for pair in dataset.test.pairs:
        wrong = [
            name for name, result in trained.items()
            if result.model.predict_match(pair) != bool(pair.label)
        ]
        if wrong:
            cases.append((pair, wrong))
        if len(cases) >= MAX_CASES:
            break
    if not cases:
        print("\nall matchers classify every sampled test pair correctly; "
              "try a larger dataset scale for harder cases")
        return

    for index, (pair, wrong_models) in enumerate(cases):
        print(f"\n=== case {index}: ground truth = {'Match' if pair.label else 'Non-Match'} ===")
        print("left :", dict(pair.left.values))
        print("right:", dict(pair.right.values))
        for name in wrong_models:
            model = trained[name].model
            original_score = model.predict_pair(pair)
            print(f"\n{name} misclassifies this pair (score = {original_score:.3f})")

            for method in SALIENCY_METHODS:
                explainer = harness.saliency_explainer(model, DATASET_CODE, method)
                explanation = explainer.explain(pair)
                top = explanation.top_attributes(2)
                inspected = inspect_faithfulness(model, pair, explanation)
                print(f"  {method:<9} top attributes: {top}  "
                      f"score after copying them: {original_score:.3f} -> {inspected:.3f}")


if __name__ == "__main__":
    main()
