"""Counterfactual audit: CERTA vs DiCE / LIME-C / SHAP-C (the Figure 5 scenario).

For a handful of predictions of the DeepMatcher stand-in on the Walmart-Amazon
style dataset, every counterfactual method proposes modified record pairs that
flip the matcher's decision.  The script prints the proposed value changes and
the proximity / sparsity / diversity metrics of Tables 4-6, so the qualitative
difference the paper highlights (CERTA's counterfactuals reuse values from real
records of the same source, DiCE may substitute unrelated values) is visible on
concrete records.

Run with::

    python examples/counterfactual_audit.py
"""

from __future__ import annotations

from repro.certa import CertaExplainer
from repro.data import load_benchmark
from repro.eval import average_metrics
from repro.explain import DiceExplainer, LimeCExplainer, ShapCExplainer
from repro.models import train_model

DATASET_CODE = "WA"
PAIRS_TO_AUDIT = 3


def main() -> None:
    dataset = load_benchmark(DATASET_CODE, scale=0.5)
    trained = train_model("deepmatcher", dataset, fast=True)
    model = trained.model
    print(f"deepmatcher on {DATASET_CODE}: test F1 = {trained.test_metrics['f1']:.3f}")

    explainers = {
        "certa": CertaExplainer(model, dataset.left, dataset.right, num_triangles=30, seed=2),
        "dice": DiceExplainer(model, dataset.left, dataset.right, total_candidates=120, seed=2),
        "shap-c": ShapCExplainer(model, max_coalitions=64, seed=2),
        "lime-c": LimeCExplainer(model, n_samples=64, seed=2),
    }

    pairs = dataset.test.sample(PAIRS_TO_AUDIT, balanced=True)
    collected = {method: [] for method in explainers}

    for index, pair in enumerate(pairs):
        score = model.predict_pair(pair)
        print(f"\n=== pair {index} (score {score:.3f}, "
              f"{'Match' if score > 0.5 else 'Non-Match'}) ===")
        print("left :", dict(pair.left.values))
        print("right:", dict(pair.right.values))
        for method, explainer in explainers.items():
            explanation = explainer.explain_counterfactual(pair)
            collected[method].append(explanation)
            best = explanation.best_example()
            print(f"\n  [{method}] {explanation.count()} example(s), "
                  f"changed attribute set: {explanation.attribute_set}")
            if best is not None:
                for name, value in best.changed_values().items():
                    print(f"      {name} -> {value!r}   (new score {best.score:.3f})")
            else:
                print("      no flipping example found")

    print("\n=== aggregate counterfactual metrics (Tables 4-6) ===")
    header = f"{'method':<9} {'proximity':>9} {'sparsity':>9} {'diversity':>9} {'validity':>9} {'count':>6}"
    print(header)
    print("-" * len(header))
    for method, explanations in collected.items():
        metrics = average_metrics(explanations)
        print(f"{method:<9} {metrics['proximity']:>9.3f} {metrics['sparsity']:>9.3f} "
              f"{metrics['diversity']:>9.3f} {metrics['validity']:>9.3f} {metrics['count']:>6.2f}")


if __name__ == "__main__":
    main()
