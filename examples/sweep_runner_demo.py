"""Sweep runner demo: parallel, checkpointable experiment execution.

Run with::

    python examples/sweep_runner_demo.py

Every experiment of the harness decomposes into independent work units
(dataset x model x method cells).  This script runs the same small saliency
sweep three ways and prints the run manifests:

1. **serial with a checkpoint store** — units land in a JSONL file as they
   complete;
2. **interrupted + resumed** — the store is truncated to simulate a killed
   run, and the next run re-executes only the missing unit while reusing the
   rest (the merged rows are asserted identical to the uninterrupted ones);
3. **process pool** — the same units on worker processes, each warming up its
   own harness; the rows are asserted identical to the serial run.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.eval import ExperimentHarness, HarnessConfig, SweepRunner, format_table

CONFIG = HarnessConfig(
    datasets=("AB", "BA"),
    models=("classical",),
    dataset_scale=0.5,
    pairs_per_dataset=4,
    num_triangles=10,
    lime_samples=24,
    shap_coalitions=24,
    dice_candidates=30,
    fast_models=True,
    seed=11,
)

METHODS = ("certa", "shap")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sweep_demo_"))
    store = workdir / "units.jsonl"

    # 1. Serial sweep with checkpointing: one JSONL line per completed unit.
    harness = ExperimentHarness(CONFIG, runner=SweepRunner(checkpoint=store))
    rows = harness.saliency_rows(methods=METHODS)
    print("=== saliency rows (serial, checkpointed) ===")
    print(format_table(rows))
    print(f"\ncheckpoint store: {store} ({len(store.read_text().splitlines())} units)")
    print(f"manifest: {harness.last_sweep.manifest()}")

    # 2. Simulate a kill mid-sweep: drop the last completed unit and leave a
    #    half-written line, then resume.  Only the missing unit re-runs.
    lines = store.read_text(encoding="utf-8").splitlines()
    store.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
    resumed = ExperimentHarness(CONFIG, runner=SweepRunner(checkpoint=store))
    resumed_rows = resumed.saliency_rows(methods=METHODS)
    assert resumed_rows == rows, "resumed rows must equal the uninterrupted run"
    manifest = resumed.last_sweep.manifest()
    print(f"\nafter simulated interruption: {manifest['units_cached']} units reused, "
          f"{manifest['units_executed']} re-executed — rows identical")

    # 3. The same sweep on a process pool: each worker builds its own harness
    #    (deterministic training), rows are byte-identical to the serial run.
    parallel = ExperimentHarness(CONFIG, runner=SweepRunner(executor="processes", max_workers=2))
    parallel_rows = parallel.saliency_rows(methods=METHODS)
    assert parallel_rows == rows, "process-pool rows must equal the serial run"
    print(f"\nprocess pool: {parallel.last_sweep.manifest()['units_executed']} units on "
          f"2 workers — rows identical to serial")

    total_skipped = sum(int(row["skipped"]) for row in rows)
    print(f"skipped explanations across the sweep: {total_skipped}")


if __name__ == "__main__":
    main()
