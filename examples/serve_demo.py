"""Explanation serving: many concurrent clients over one warm engine.

Run with::

    python examples/serve_demo.py

The script stands up an :class:`repro.serve.ExplanationService` for one
(model, dataset) target and fires sixteen concurrent clients at four hot
pairs — the interactive-dashboard shape the service is built for.  It then
shows the three serving guarantees in action:

* responses are **byte-identical** to a direct single-threaded
  :class:`repro.certa.CertaExplainer` run (coalescing is a throughput
  optimisation, never an approximation);
* overlapping lattice frontiers really are **merged into shared prediction
  batches** (see the ``coalesced_dispatches`` / ``deduped_pairs`` counters);
* **budgets and admission control** fail requests whole — a request with a
  tiny lattice-node budget gets a clean ``BudgetError`` response, never a
  partial explanation.
"""

from __future__ import annotations

import asyncio
import json

from repro.certa import CertaExplainer
from repro.data import load_benchmark
from repro.models import train_model
from repro.serve import ExplainRequest, ExplanationService, ServeTarget, explanation_payload


def main() -> None:
    # 1. Dataset + matcher, as in the quickstart.
    dataset = load_benchmark("AB", scale=0.5)
    trained = train_model("classical", dataset, fast=True)
    pairs = (dataset.test.positives() + dataset.test.negatives())[:4]

    # 2. One servable target; the service seals the sources, builds the
    #    indexes and starts the frontier scheduler when it enters.
    target = ServeTarget(
        name="ab",
        model=trained.model,
        left_source=dataset.left,
        right_source=dataset.right,
        num_triangles=8,
        seed=3,
    )
    requests = [
        ExplainRequest(target="ab", pair=pairs[i % len(pairs)], request_id=f"client-{i}")
        for i in range(16)
    ]

    async def serve_all():
        async with ExplanationService([target], workers=8, queue_limit=32) as service:
            responses = await service.explain_many(requests)
            # A 1-node lattice budget cannot fit an explanation: the request
            # fails whole with a clean taxonomy error, never a partial result.
            budgeted = await service.submit(
                ExplainRequest(target="ab", pair=pairs[0], max_lattice_nodes=1)
            )
            return responses, budgeted, service.stats

    responses, budgeted, stats = asyncio.run(serve_all())

    # 3. Byte-identity against a direct, single-threaded explainer.
    direct = CertaExplainer(
        trained.model, dataset.left, dataset.right, num_triangles=8, seed=3
    )
    for index, response in enumerate(responses):
        expected = explanation_payload(direct.explain_full(pairs[index % len(pairs)]))
        assert json.dumps(response.payload, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    print(f"served {stats.completed}/{stats.requests} requests")
    print(
        f"  {stats.dispatches} dispatches, {stats.coalesced_dispatches} coalesced, "
        f"{stats.deduped_pairs}/{stats.merged_pairs} pairs deduped"
    )
    print(f"  p50 {stats.p50_latency_ms:.1f} ms, p99 {stats.p99_latency_ms:.1f} ms")
    print(f"budgeted request: status={budgeted.status!r} ({budgeted.budget}), no payload")
    assert budgeted.status == "error" and budgeted.payload is None
    print("all served explanations byte-identical to the direct explainer")


if __name__ == "__main__":
    main()
