"""Quickstart: train an ER matcher and explain one of its predictions with CERTA.

Run with::

    python examples/quickstart.py

The script uses the synthetic Abt-Buy-style benchmark (``AB``), trains the
Ditto stand-in matcher, and produces both a saliency and a counterfactual
explanation for one test prediction.
"""

from __future__ import annotations

from repro.certa import CertaExplainer
from repro.data import load_benchmark
from repro.models import train_model


def main() -> None:
    # 1. Load a benchmark dataset (two record sources + labelled pairs).
    dataset = load_benchmark("AB", scale=0.5)
    print(f"dataset {dataset.name}: {int(dataset.statistics()['matches'])} matches, "
          f"{len(dataset.left)} x {len(dataset.right)} records")

    # 2. Train a black-box matcher (DeepER / DeepMatcher / Ditto / classical).
    trained = train_model("ditto", dataset, fast=True)
    model = trained.model
    print(f"trained {model.name}: test F1 = {trained.test_metrics['f1']:.3f}")

    # 3. Build the CERTA explainer on top of the dataset's record sources.
    explainer = CertaExplainer(model, dataset.left, dataset.right, num_triangles=30, seed=0)

    # 4. Explain one test prediction.
    pair = dataset.test.positives()[0]
    explanation = explainer.explain_full(pair)

    print("\n--- input pair ---")
    print("left :", dict(pair.left.values))
    print("right:", dict(pair.right.values))
    print(f"matching score = {explanation.prediction:.3f} "
          f"({'Match' if explanation.prediction > 0.5 else 'Non-Match'})")

    print("\n--- saliency explanation (probability of necessity per attribute) ---")
    for name, score in explanation.saliency.ranked():
        print(f"  {name:<24} {score:.3f}")

    print("\n--- counterfactual explanation ---")
    counterfactual = explanation.counterfactual
    print(f"golden attribute set A* = {counterfactual.attribute_set} "
          f"(probability of sufficiency = {counterfactual.sufficiency:.2f})")
    best = counterfactual.best_example()
    if best is not None:
        print(f"one counterfactual example (score {best.score:.3f}, original {best.original_score:.3f}):")
        for name, value in best.changed_values().items():
            print(f"  {name} -> {value!r}")
    else:
        print("no counterfactual example found for this prediction")

    print(f"\nused {explanation.triangles_used} open triangles "
          f"({explanation.augmented_triangles} from data augmentation), "
          f"{explanation.performed_predictions()} lattice model calls, "
          f"{explanation.saved_predictions()} saved by monotonicity")


if __name__ == "__main__":
    main()
